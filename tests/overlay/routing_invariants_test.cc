// Property-based invariants for the resilient routing layer
// (docs/RESILIENCE.md), driven by the proptest harness in tests/test_util.h:
// randomized overlays, crash sets, workloads, and fault plans, with failing
// cases shrunk to a labeled counterexample.
//
// The properties:
//  * progress — every forwarding attempt strictly decreases the remaining
//    id-space distance (Chord: clockwise distance to the key; Pastry: a
//    strictly longer common prefix or a strictly smaller ring distance,
//    with the documented smaller-id tie rule on the final leaf-set
//    delivery hop only; Kademlia: a strictly smaller XOR distance, no tie
//    rule — the XOR metric has unique distances),
//  * termination — attempts never exceed the hop budget plus the final
//    over-budget probe, per-visit retries respect max_retries, and a
//    budget abort raises budget_exhausted rather than failing silently,
//  * equivalence — an enabled plan whose gates cannot fire (stale windows
//    on an all-alive overlay) reproduces the fault-free route bit for bit,
//    and an all-zero plan takes the fault-free branch outright,
//  * determinism — replaying a lookup under the same plan is byte-stable.
//
// Together with the equivalence suite below this registers 315 randomized
// cases (105 per overlay), each routing up to ten lookups.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "chord/chord_network.h"
#include "common/bits.h"
#include "common/fault.h"
#include "common/random.h"
#include "common/ring_id.h"
#include "common/route_result.h"
#include "common/status.h"
#include "common/trace.h"
#include "experiments/batch_engine.h"
#include "kademlia/kademlia_network.h"
#include "pastry/pastry_network.h"
#include "test_util.h"

namespace peercache {
namespace {

constexpr int kInvariantCases = 60;    // per overlay
constexpr int kEquivalenceCases = 45;  // per overlay

/// One randomized scenario: an overlay population, a crash set applied
/// after the last stabilization (so surviving tables go stale), and a
/// fault plan. Drawn entirely through the proptest tape so it shrinks.
struct Scenario {
  int bits = 16;
  std::vector<uint64_t> ids;   // nodes added, in insertion order
  std::vector<uint64_t> live;  // still alive after the crash set
  int aux_per_node = 0;
  uint64_t net_seed = 1;   // drives id sampling and auxiliary picks
  uint64_t work_seed = 1;  // drives lookup origins and keys
  int queries = 1;
  fault::FaultConfig faults;
};

Scenario DrawScenario(proptest::Case& c, bool with_crashes,
                      bool with_faults) {
  Scenario s;
  s.bits = static_cast<int>(c.Range("bits", 8, 16));
  const uint64_t n = c.Range("n", 2, 48);
  s.net_seed = c.Range("net_seed", 1, uint64_t{1} << 32);
  s.work_seed = c.Range("work_seed", 1, uint64_t{1} << 32);
  s.aux_per_node = static_cast<int>(c.Range("aux", 0, 6));
  const uint64_t crashed = with_crashes ? c.Range("crashed", 0, n / 3) : 0;
  s.queries = static_cast<int>(c.Range("queries", 1, 10));
  if (with_faults) {
    s.faults.drop_prob = 0.5 * c.Unit("drop");
    s.faults.fail_prob = 0.15 * c.Unit("fail");
    s.faults.stale_prob = c.Unit("stale");
    s.faults.max_retries = static_cast<int>(c.Range("max_retries", 1, 8));
    s.faults.retry = c.Bool("retry");
  }
  s.faults.seed = c.Range("fault_seed", 0, uint64_t{1} << 32);

  Rng rng(s.net_seed);
  const uint64_t space = uint64_t{1} << s.bits;
  s.ids = rng.SampleDistinct(space, static_cast<size_t>(n));
  std::vector<uint64_t> crash_idx =
      rng.SampleDistinct(n, static_cast<size_t>(crashed));
  std::vector<bool> dead(s.ids.size(), false);
  for (uint64_t i : crash_idx) dead[static_cast<size_t>(i)] = true;
  for (size_t i = 0; i < s.ids.size(); ++i) {
    if (!dead[i]) s.live.push_back(s.ids[i]);
  }
  return s;
}

/// Adds every node, stabilizes, installs random auxiliaries, then applies
/// the crash set with no further stabilization — the crashed nodes linger
/// in the survivors' tables exactly as a churn window would leave them.
template <typename Net>
std::string Populate(Net& net, const Scenario& s) {
  for (uint64_t id : s.ids) {
    if (Status st = net.AddNode(id); !st.ok()) {
      return "AddNode failed: " + st.ToString();
    }
  }
  net.StabilizeAll();
  Rng rng(SplitSeed(s.net_seed, 0x617578));  // "aux"
  for (uint64_t id : s.ids) {
    std::vector<uint64_t> aux;
    for (int a = 0; a < s.aux_per_node; ++a) {
      uint64_t pick =
          s.ids[static_cast<size_t>(rng.UniformU64(s.ids.size()))];
      if (pick != id) aux.push_back(pick);
    }
    if (Status st = net.SetAuxiliaries(id, aux); !st.ok()) {
      return "SetAuxiliaries failed: " + st.ToString();
    }
  }
  std::vector<bool> alive(s.ids.size(), false);
  for (size_t i = 0; i < s.ids.size(); ++i) {
    for (uint64_t keep : s.live) {
      if (s.ids[i] == keep) alive[i] = true;
    }
  }
  for (size_t i = 0; i < s.ids.size(); ++i) {
    if (alive[i]) continue;
    if (Status st = net.RemoveNode(s.ids[i]); !st.ok()) {
      return "RemoveNode failed: " + st.ToString();
    }
  }
  return "";
}

std::string U64(uint64_t v) { return std::to_string(v); }

std::string Where(const char* what, int q, uint64_t origin, uint64_t key) {
  return std::string(what) + " (query " + std::to_string(q) + ", origin " +
         U64(origin) + ", key " + U64(key) + ")";
}

/// Chord progress rule: every attempt — delivered or dropped — targets an
/// entry strictly clockwise-closer to the key, and the recorded remaining
/// distance is the target's true distance.
std::string ChordHopOk(const IdSpace& space, const HopRecord& r,
                       uint64_t key, bool /*is_last*/) {
  const uint64_t before = space.ClockwiseDistance(r.from, key);
  const uint64_t after = space.ClockwiseDistance(r.to, key);
  if (after >= before) {
    return "chord hop " + U64(r.from) + "->" + U64(r.to) +
           " does not decrease clockwise distance (" + U64(before) + " -> " +
           U64(after) + ")";
  }
  if (r.remaining != after) {
    return "chord hop remaining mismatch: recorded " + U64(r.remaining) +
           " vs actual " + U64(after);
  }
  return "";
}

/// Pastry progress rule: a strictly longer common prefix (R2), a strictly
/// smaller ring distance (R3 and ordinary R1 delivery), or the equal-
/// distance smaller-id tie on the final delivery hop. Dropped attempts may
/// sit on the tie anywhere (a lost delivery message is retransmitted).
std::string PastryHopOk(const IdSpace& space, const HopRecord& r,
                        uint64_t key, bool is_last) {
  const int bits = space.bits();
  const int lcp_from = CommonPrefixLength(r.from, key, bits);
  const int lcp_to = CommonPrefixLength(r.to, key, bits);
  auto ring_distance = [&space](uint64_t a, uint64_t b) {
    return std::min(space.ClockwiseDistance(a, b),
                    space.ClockwiseDistance(b, a));
  };
  const uint64_t d_from = ring_distance(r.from, key);
  const uint64_t d_to = ring_distance(r.to, key);
  const bool progress = lcp_to > lcp_from || d_to < d_from;
  const bool delivery_tie = d_to == d_from && r.to < r.from;
  if (!progress && !(delivery_tie && (r.dropped || is_last))) {
    return "pastry hop " + U64(r.from) + "->" + U64(r.to) +
           " makes no progress (lcp " + std::to_string(lcp_from) + " -> " +
           std::to_string(lcp_to) + ", ring distance " + U64(d_from) +
           " -> " + U64(d_to) + ")";
  }
  if (r.remaining != static_cast<uint64_t>(bits - lcp_to)) {
    return "pastry hop remaining mismatch: recorded " + U64(r.remaining) +
           " vs actual " + U64(static_cast<uint64_t>(bits - lcp_to));
  }
  return "";
}

/// Kademlia progress rule: every attempt targets an entry strictly
/// XOR-closer to the key — the metric is a total order on distinct ids, so
/// no tie rule exists — and the recorded remaining distance is the
/// target's full XOR distance to the key.
std::string KademliaHopOk(const IdSpace& /*space*/, const HopRecord& r,
                          uint64_t key, bool /*is_last*/) {
  const uint64_t before = r.from ^ key;
  const uint64_t after = r.to ^ key;
  if (after >= before) {
    return "kademlia hop " + U64(r.from) + "->" + U64(r.to) +
           " does not decrease XOR distance (" + U64(before) + " -> " +
           U64(after) + ")";
  }
  if (r.remaining != after) {
    return "kademlia hop remaining mismatch: recorded " + U64(r.remaining) +
           " vs actual " + U64(after);
  }
  return "";
}

/// Structural audit of one faulted route against its trace.
template <typename Net, typename HopOkFn>
std::string CheckStructure(const Net& net, const Scenario& s,
                           uint64_t origin, uint64_t key,
                           const overlay::RouteResult& route,
                           const RouteTrace& trace, const HopOkFn& hop_ok) {
  const int max_hops = net.params().max_route_hops;
  size_t delivered_records = 0;
  size_t dropped_records = 0;
  int drops_since_move = 0;
  uint64_t pos = origin;
  for (size_t i = 0; i < trace.path.size(); ++i) {
    const HopRecord& r = trace.path[i];
    if (r.from != pos) {
      return "trace chain broken at record " + std::to_string(i) +
             ": from " + U64(r.from) + " but route is at " + U64(pos);
    }
    if (std::string err =
            hop_ok(net.space(), r, key, i + 1 == trace.path.size());
        !err.empty()) {
      return err;
    }
    if (r.dropped) {
      if (r.retried) return "a dropped record cannot also be retried";
      ++dropped_records;
      ++drops_since_move;
      continue;
    }
    if (r.retried != (drops_since_move > 0)) {
      return std::string("retried flag wrong at record ") +
             std::to_string(i) + ": " + (r.retried ? "set" : "unset") +
             " after " + std::to_string(drops_since_move) +
             " drops at this visit";
    }
    ++delivered_records;
    drops_since_move = 0;
    pos = r.to;
  }
  if (route.destination != pos) {
    return "destination " + U64(route.destination) +
           " is not where the delivered hops end (" + U64(pos) + ")";
  }
  if (route.path.size() != delivered_records) {
    return "path length " + std::to_string(route.path.size()) +
           " != delivered trace records " + std::to_string(delivered_records);
  }
  if (route.retries != static_cast<int>(dropped_records)) {
    return "retries " + std::to_string(route.retries) +
           " != dropped trace records " + std::to_string(dropped_records);
  }
  if (route.retries != route.dropped_forwards + route.failstop_skips +
                           route.stale_forwards) {
    return "retry cause counters do not sum to retries";
  }
  if (route.hops > max_hops) {
    return "hops " + std::to_string(route.hops) + " over the budget " +
           std::to_string(max_hops);
  }
  // Every attempt spent one unit of budget; the loop may probe once while
  // exactly at the cap before aborting.
  if (trace.path.size() > static_cast<size_t>(max_hops) + 1) {
    return "attempts " + std::to_string(trace.path.size()) +
           " exceed the hop budget plus the final probe";
  }
  if (route.hops != static_cast<int>(route.path.size()) &&
      !(route.budget_exhausted && route.hops == max_hops)) {
    return "hops " + std::to_string(route.hops) +
           " disagree with path length " + std::to_string(route.path.size());
  }
  if (route.budget_exhausted && route.success) {
    return "a budget-exhausted lookup cannot be successful";
  }
  if (!s.faults.retry && route.retries > 0 &&
      (route.retries != 1 || route.success)) {
    return "with retries disabled the first failure must abort the lookup";
  }
  if (route.success) {
    auto truth = net.ResponsibleNode(key);
    if (!truth.ok()) return "ResponsibleNode failed on a success route";
    if (route.destination != truth.value()) {
      return "successful lookup delivered at " + U64(route.destination) +
             " but " + U64(truth.value()) + " is responsible";
    }
  }
  for (const auto& [holder, entry] : route.dead_evictions) {
    if (!net.IsAlive(holder) || net.IsAlive(entry)) {
      return "dead eviction (" + U64(holder) + ", " + U64(entry) +
             ") must name a live holder and a dead entry";
    }
  }
  return "";
}

bool SameRoute(const overlay::RouteResult& a, const overlay::RouteResult& b) {
  return a.success == b.success && a.destination == b.destination &&
         a.hops == b.hops && a.aux_hops == b.aux_hops && a.path == b.path &&
         a.retries == b.retries &&
         a.dropped_forwards == b.dropped_forwards &&
         a.failstop_skips == b.failstop_skips &&
         a.stale_forwards == b.stale_forwards &&
         a.budget_exhausted == b.budget_exhausted &&
         a.dead_evictions == b.dead_evictions;
}

bool SameTrace(const RouteTrace& a, const RouteTrace& b) {
  if (a.destination != b.destination || a.success != b.success ||
      a.hops != b.hops || a.path.size() != b.path.size()) {
    return false;
  }
  for (size_t i = 0; i < a.path.size(); ++i) {
    const HopRecord& x = a.path[i];
    const HopRecord& y = b.path[i];
    if (x.from != y.from || x.to != y.to || x.kind != y.kind ||
        x.remaining != y.remaining || x.dropped != y.dropped ||
        x.retried != y.retried) {
      return false;
    }
  }
  return true;
}

/// Invariant property body: route the scenario's workload under its fault
/// plan, audit every route, and replay each lookup once to pin determinism.
template <typename Net, typename HopOkFn>
std::string CheckFaultedLookups(const Net& net, const Scenario& s,
                                const HopOkFn& hop_ok) {
  const fault::FaultPlan plan(s.faults);
  Rng rng(s.work_seed);
  for (int q = 0; q < s.queries; ++q) {
    const uint64_t origin =
        s.live[static_cast<size_t>(rng.UniformU64(s.live.size()))];
    const uint64_t key = rng.NextU64() & LowBitMask(s.bits);
    overlay::RouteResult route;
    RouteTrace trace;
    if (Status st = net.LookupInto(origin, key, route, &trace, &plan);
        !st.ok()) {
      return Where("lookup failed", q, origin, key) + ": " + st.ToString();
    }
    if (std::string err =
            CheckStructure(net, s, origin, key, route, trace, hop_ok);
        !err.empty()) {
      return err + " — " + Where("", q, origin, key);
    }
    overlay::RouteResult again;
    RouteTrace trace_again;
    if (Status st = net.LookupInto(origin, key, again, &trace_again, &plan);
        !st.ok()) {
      return Where("replay failed", q, origin, key) + ": " + st.ToString();
    }
    if (!SameRoute(route, again) || !SameTrace(trace, trace_again)) {
      return Where("replay under the same plan diverged", q, origin, key);
    }
  }
  return "";
}

/// Equivalence property body: on an all-alive overlay a plan with only
/// stale windows enabled routes through the resilient code path but can
/// never fire a gate, so it must reproduce the fault-free route exactly;
/// a disabled plan must take the fault-free branch outright.
template <typename Net>
std::string CheckZeroFaultEquivalence(const Net& net, const Scenario& s) {
  fault::FaultConfig armed;
  armed.stale_prob = 1.0;  // consults dead entries only; none exist here
  armed.seed = s.faults.seed;
  const fault::FaultPlan resilient(armed);
  const fault::FaultPlan disabled;  // all-zero: enabled() is false
  Rng rng(s.work_seed);
  for (int q = 0; q < s.queries; ++q) {
    const uint64_t origin =
        s.live[static_cast<size_t>(rng.UniformU64(s.live.size()))];
    const uint64_t key = rng.NextU64() & LowBitMask(s.bits);
    overlay::RouteResult base, faulted, off;
    RouteTrace base_trace, faulted_trace;
    if (Status st = net.LookupInto(origin, key, base, &base_trace, nullptr);
        !st.ok()) {
      return Where("fault-free lookup failed", q, origin, key);
    }
    if (Status st =
            net.LookupInto(origin, key, faulted, &faulted_trace, &resilient);
        !st.ok()) {
      return Where("resilient lookup failed", q, origin, key);
    }
    if (Status st = net.LookupInto(origin, key, off, nullptr, &disabled);
        !st.ok()) {
      return Where("disabled-plan lookup failed", q, origin, key);
    }
    if (faulted.retries != 0 || faulted.budget_exhausted) {
      return Where("zero-fault route reported failures", q, origin, key);
    }
    if (!SameRoute(base, faulted) || !SameTrace(base_trace, faulted_trace)) {
      return Where("zero-fault route diverged from the fault-free route", q,
                   origin, key);
    }
    if (!SameRoute(base, off)) {
      return Where("disabled plan diverged from the null plan", q, origin,
                   key);
    }
  }
  return "";
}

TEST(RoutingInvariants, ChordFaultedRoutesKeepInvariants) {
  auto outcome =
      proptest::RunProperty(0xC403D, kInvariantCases, [](proptest::Case& c) {
        Scenario s =
            DrawScenario(c, /*with_crashes=*/true, /*with_faults=*/true);
        chord::ChordParams params;
        params.bits = s.bits;
        chord::ChordNetwork net(params);
        if (std::string err = Populate(net, s); !err.empty()) return err;
        return CheckFaultedLookups(net, s, ChordHopOk);
      });
  EXPECT_TRUE(outcome.ok)
      << "case " << outcome.failing_case << ": " << outcome.message
      << "\n  counterexample: " << outcome.counterexample;
}

TEST(RoutingInvariants, PastryFaultedRoutesKeepInvariants) {
  auto outcome =
      proptest::RunProperty(0xBA512, kInvariantCases, [](proptest::Case& c) {
        Scenario s =
            DrawScenario(c, /*with_crashes=*/true, /*with_faults=*/true);
        pastry::PastryParams params;
        params.bits = s.bits;
        pastry::PastryNetwork net(params, s.net_seed);
        if (std::string err = Populate(net, s); !err.empty()) return err;
        return CheckFaultedLookups(net, s, PastryHopOk);
      });
  EXPECT_TRUE(outcome.ok)
      << "case " << outcome.failing_case << ": " << outcome.message
      << "\n  counterexample: " << outcome.counterexample;
}

TEST(RoutingInvariants, KademliaFaultedRoutesKeepInvariants) {
  auto outcome =
      proptest::RunProperty(0x4AD17, kInvariantCases, [](proptest::Case& c) {
        Scenario s =
            DrawScenario(c, /*with_crashes=*/true, /*with_faults=*/true);
        kademlia::KademliaParams params;
        params.bits = s.bits;
        kademlia::KademliaNetwork net(params);
        if (std::string err = Populate(net, s); !err.empty()) return err;
        return CheckFaultedLookups(net, s, KademliaHopOk);
      });
  EXPECT_TRUE(outcome.ok)
      << "case " << outcome.failing_case << ": " << outcome.message
      << "\n  counterexample: " << outcome.counterexample;
}

TEST(RoutingInvariants, ChordZeroFaultRouteEqualsFaultFreeRoute) {
  auto outcome = proptest::RunProperty(
      0x2E90, kEquivalenceCases, [](proptest::Case& c) {
        Scenario s =
            DrawScenario(c, /*with_crashes=*/false, /*with_faults=*/false);
        chord::ChordParams params;
        params.bits = s.bits;
        chord::ChordNetwork net(params);
        if (std::string err = Populate(net, s); !err.empty()) return err;
        return CheckZeroFaultEquivalence(net, s);
      });
  EXPECT_TRUE(outcome.ok)
      << "case " << outcome.failing_case << ": " << outcome.message
      << "\n  counterexample: " << outcome.counterexample;
}

TEST(RoutingInvariants, PastryZeroFaultRouteEqualsFaultFreeRoute) {
  auto outcome = proptest::RunProperty(
      0x2E91, kEquivalenceCases, [](proptest::Case& c) {
        Scenario s =
            DrawScenario(c, /*with_crashes=*/false, /*with_faults=*/false);
        pastry::PastryParams params;
        params.bits = s.bits;
        pastry::PastryNetwork net(params, s.net_seed);
        if (std::string err = Populate(net, s); !err.empty()) return err;
        return CheckZeroFaultEquivalence(net, s);
      });
  EXPECT_TRUE(outcome.ok)
      << "case " << outcome.failing_case << ": " << outcome.message
      << "\n  counterexample: " << outcome.counterexample;
}

TEST(RoutingInvariants, KademliaZeroFaultRouteEqualsFaultFreeRoute) {
  auto outcome = proptest::RunProperty(
      0x2E92, kEquivalenceCases, [](proptest::Case& c) {
        Scenario s =
            DrawScenario(c, /*with_crashes=*/false, /*with_faults=*/false);
        kademlia::KademliaParams params;
        params.bits = s.bits;
        kademlia::KademliaNetwork net(params);
        if (std::string err = Populate(net, s); !err.empty()) return err;
        return CheckZeroFaultEquivalence(net, s);
      });
  EXPECT_TRUE(outcome.ok)
      << "case " << outcome.failing_case << ": " << outcome.message
      << "\n  counterexample: " << outcome.counterexample;
}

// Differential properties for the flat-table refactor and the batched
// lookup engine (docs/ARCHITECTURE.md §7): the cursor-based batched pass
// must agree with LookupInto job for job, and the flattened Kademlia
// buckets must retain exactly the set the naive per-bucket model keeps.

/// Batch-vs-single differential body: route a random job list through the
/// window-16 batched engine and through the LookupInto reference loop, and
/// require identical outcomes per job (including jobs the engine refuses).
template <typename Net>
std::string CheckBatchedMatchesSingle(const Net& net, const Scenario& s) {
  Rng rng(SplitSeed(s.work_seed, 0x626174));  // "bat"
  const size_t n_jobs = 1 + s.queries * 7;
  std::vector<experiments::LookupJob> jobs(n_jobs);
  for (auto& job : jobs) {
    // Mostly live origins, occasionally a dead one (BeginLookup refusal).
    job.origin = rng.UniformDouble() < 0.9
                     ? s.live[static_cast<size_t>(
                           rng.UniformU64(s.live.size()))]
                     : s.ids[static_cast<size_t>(
                           rng.UniformU64(s.ids.size()))];
    job.key = rng.NextU64() & LowBitMask(s.bits);
  }
  std::vector<experiments::BatchLookupResult> results(jobs.size());
  experiments::RunBatchedLookups(net, jobs, /*window=*/16, results);
  for (size_t i = 0; i < jobs.size(); ++i) {
    overlay::RouteResult route;
    const Status st = net.LookupInto(jobs[i].origin, jobs[i].key, route);
    if (st.ok() != results[i].ok) {
      return "job " + std::to_string(i) + ": batched ok=" +
             std::to_string(results[i].ok) + " but LookupInto says " +
             st.ToString();
    }
    if (!st.ok()) continue;
    if (results[i].destination != route.destination ||
        results[i].hops != route.hops ||
        results[i].aux_hops != route.aux_hops ||
        results[i].success != route.success) {
      return "job " + std::to_string(i) + " (origin " + U64(jobs[i].origin) +
             ", key " + U64(jobs[i].key) + "): batched {" +
             U64(results[i].destination) + ", " +
             std::to_string(results[i].hops) + ", " +
             std::to_string(results[i].aux_hops) + ", " +
             std::to_string(results[i].success) + "} vs single {" +
             U64(route.destination) + ", " + std::to_string(route.hops) +
             ", " + std::to_string(route.aux_hops) + ", " +
             std::to_string(route.success) + "}";
    }
  }
  return "";
}

TEST(BatchedLookups, ChordBatchedMatchesSingleLookup) {
  auto outcome = proptest::RunProperty(0xBA7C0, 40, [](proptest::Case& c) {
    Scenario s = DrawScenario(c, /*with_crashes=*/true, /*with_faults=*/false);
    chord::ChordParams params;
    params.bits = s.bits;
    chord::ChordNetwork net(params);
    if (std::string err = Populate(net, s); !err.empty()) return err;
    return CheckBatchedMatchesSingle(net, s);
  });
  EXPECT_TRUE(outcome.ok)
      << "case " << outcome.failing_case << ": " << outcome.message
      << "\n  counterexample: " << outcome.counterexample;
}

TEST(BatchedLookups, PastryBatchedMatchesSingleLookup) {
  auto outcome = proptest::RunProperty(0xBA7C1, 40, [](proptest::Case& c) {
    Scenario s = DrawScenario(c, /*with_crashes=*/true, /*with_faults=*/false);
    pastry::PastryParams params;
    params.bits = s.bits;
    pastry::PastryNetwork net(params, s.net_seed);
    if (std::string err = Populate(net, s); !err.empty()) return err;
    return CheckBatchedMatchesSingle(net, s);
  });
  EXPECT_TRUE(outcome.ok)
      << "case " << outcome.failing_case << ": " << outcome.message
      << "\n  counterexample: " << outcome.counterexample;
}

TEST(BatchedLookups, KademliaBatchedMatchesSingleLookup) {
  auto outcome = proptest::RunProperty(0xBA7C2, 40, [](proptest::Case& c) {
    Scenario s = DrawScenario(c, /*with_crashes=*/true, /*with_faults=*/false);
    kademlia::KademliaParams params;
    params.bits = s.bits;
    kademlia::KademliaNetwork net(params);
    if (std::string err = Populate(net, s); !err.empty()) return err;
    return CheckBatchedMatchesSingle(net, s);
  });
  EXPECT_TRUE(outcome.ok)
      << "case " << outcome.failing_case << ": " << outcome.message
      << "\n  counterexample: " << outcome.counterexample;
}

/// Batched-warmup differential body: resolve a random key list through the
/// window-16 ResponsibleCursor engine and through the ResponsibleNode
/// reference loop, and require identical owners key for key.
template <typename Net>
std::string CheckBatchedResponsibleMatches(const Net& net,
                                           const Scenario& s) {
  Rng rng(SplitSeed(s.work_seed, 0x726573));  // "res"
  const size_t n_keys = 1 + s.queries * 9;
  std::vector<uint64_t> keys(n_keys);
  for (uint64_t& key : keys) key = rng.NextU64() & LowBitMask(s.bits);
  std::vector<uint64_t> answers(n_keys);
  const Status st = experiments::RunBatchedResponsible(
      net, keys, /*window=*/16, std::span<uint64_t>(answers));
  if (!st.ok()) return "RunBatchedResponsible failed: " + st.ToString();
  for (size_t i = 0; i < keys.size(); ++i) {
    const auto owner = net.ResponsibleNode(keys[i]);
    if (!owner.ok()) {
      return "ResponsibleNode failed: " + owner.status().ToString();
    }
    if (answers[i] != owner.value()) {
      return "key " + U64(keys[i]) + ": batched owner " + U64(answers[i]) +
             " vs ResponsibleNode " + U64(owner.value());
    }
  }
  return "";
}

TEST(BatchedResponsible, ChordBatchedMatchesResponsibleNode) {
  auto outcome = proptest::RunProperty(0xBA7D0, 40, [](proptest::Case& c) {
    Scenario s = DrawScenario(c, /*with_crashes=*/true, /*with_faults=*/false);
    chord::ChordParams params;
    params.bits = s.bits;
    chord::ChordNetwork net(params);
    if (std::string err = Populate(net, s); !err.empty()) return err;
    return CheckBatchedResponsibleMatches(net, s);
  });
  EXPECT_TRUE(outcome.ok)
      << "case " << outcome.failing_case << ": " << outcome.message
      << "\n  counterexample: " << outcome.counterexample;
}

TEST(BatchedResponsible, PastryBatchedMatchesResponsibleNode) {
  auto outcome = proptest::RunProperty(0xBA7D1, 40, [](proptest::Case& c) {
    Scenario s = DrawScenario(c, /*with_crashes=*/true, /*with_faults=*/false);
    pastry::PastryParams params;
    params.bits = s.bits;
    pastry::PastryNetwork net(params, s.net_seed);
    if (std::string err = Populate(net, s); !err.empty()) return err;
    return CheckBatchedResponsibleMatches(net, s);
  });
  EXPECT_TRUE(outcome.ok)
      << "case " << outcome.failing_case << ": " << outcome.message
      << "\n  counterexample: " << outcome.counterexample;
}

TEST(BatchedResponsible, KademliaBatchedMatchesResponsibleNode) {
  auto outcome = proptest::RunProperty(0xBA7D2, 40, [](proptest::Case& c) {
    Scenario s = DrawScenario(c, /*with_crashes=*/true, /*with_faults=*/false);
    kademlia::KademliaParams params;
    params.bits = s.bits;
    kademlia::KademliaNetwork net(params);
    if (std::string err = Populate(net, s); !err.empty()) return err;
    return CheckBatchedResponsibleMatches(net, s);
  });
  EXPECT_TRUE(outcome.ok)
      << "case " << outcome.failing_case << ": " << outcome.message
      << "\n  counterexample: " << outcome.counterexample;
}

TEST(FlatTables, KademliaFlatBucketsMatchNaiveModel) {
  // The trie-descent bucket fill over the sorted live array must retain,
  // per distance class, exactly what the naive model keeps: distribute all
  // other live ids by common-prefix length, sort each class by XOR
  // distance, truncate to bucket_size, re-sort by id.
  auto outcome = proptest::RunProperty(0xF1A7, 40, [](proptest::Case& c) {
    Scenario s = DrawScenario(c, /*with_crashes=*/true, /*with_faults=*/false);
    kademlia::KademliaParams params;
    params.bits = s.bits;
    params.bucket_size = static_cast<int>(c.Range("bucket_size", 1, 8));
    kademlia::KademliaNetwork net(params);
    if (std::string err = Populate(net, s); !err.empty()) return err;
    net.StabilizeAll();  // rebuild from the post-crash live set

    std::vector<uint64_t> live = net.LiveNodeIds();
    for (uint64_t self : live) {
      // Naive shadow model.
      std::vector<std::vector<uint64_t>> model(
          static_cast<size_t>(s.bits));
      for (uint64_t w : live) {
        if (w == self) continue;
        model[static_cast<size_t>(CommonPrefixLength(self, w, s.bits))]
            .push_back(w);
      }
      size_t last_nonempty = 0;
      for (size_t i = 0; i < model.size(); ++i) {
        auto& bucket = model[i];
        std::sort(bucket.begin(), bucket.end(),
                  [self](uint64_t a, uint64_t b) {
                    return (a ^ self) < (b ^ self);
                  });
        if (bucket.size() > static_cast<size_t>(params.bucket_size)) {
          bucket.resize(static_cast<size_t>(params.bucket_size));
        }
        std::sort(bucket.begin(), bucket.end());
        if (!bucket.empty()) last_nonempty = i + 1;
      }
      model.resize(last_nonempty);

      const kademlia::KademliaNode* node = net.GetNode(self);
      if (net.BucketCount(*node) != model.size()) {
        return "node " + U64(self) + ": " +
               std::to_string(net.BucketCount(*node)) +
               " materialized classes vs model " +
               std::to_string(model.size());
      }
      for (size_t i = 0; i < model.size(); ++i) {
        const auto got = net.Bucket(*node, i);
        if (!std::equal(got.begin(), got.end(), model[i].begin(),
                        model[i].end())) {
          return "node " + U64(self) + " bucket " + std::to_string(i) +
                 " diverges from the naive model";
        }
      }
    }
    return std::string();
  });
  EXPECT_TRUE(outcome.ok)
      << "case " << outcome.failing_case << ": " << outcome.message
      << "\n  counterexample: " << outcome.counterexample;
}

TEST(FlatTables, PastrySampledStabilizeStillRoutesExactly) {
  // The scale-frontier builds fill Pastry routing rows from a bounded
  // sample instead of an exact scan. Entries may differ (proximity choice),
  // but stable-state delivery must stay exact: rows only accelerate, the
  // leaf set still guarantees the final step.
  auto outcome = proptest::RunProperty(0x5A3B, 30, [](proptest::Case& c) {
    Scenario s = DrawScenario(c, /*with_crashes=*/false, /*with_faults=*/false);
    pastry::PastryParams params;
    params.bits = s.bits;
    params.stabilize_sample = 16;
    pastry::PastryNetwork net(params, s.net_seed);
    if (std::string err = Populate(net, s); !err.empty()) return err;
    Rng rng(s.work_seed);
    for (int q = 0; q < s.queries * 5; ++q) {
      const uint64_t origin =
          s.live[static_cast<size_t>(rng.UniformU64(s.live.size()))];
      const uint64_t key = rng.NextU64() & LowBitMask(s.bits);
      auto route = net.Lookup(origin, key);
      if (!route.ok()) return "lookup failed: " + route.status().ToString();
      if (!route->success) {
        return Where("sampled-stabilize lookup missed", q, origin, key);
      }
      auto truth = net.ResponsibleNode(key);
      if (!truth.ok() || route->destination != truth.value()) {
        return Where("sampled-stabilize lookup misdelivered", q, origin,
                     key);
      }
    }
    return std::string();
  });
  EXPECT_TRUE(outcome.ok)
      << "case " << outcome.failing_case << ": " << outcome.message
      << "\n  counterexample: " << outcome.counterexample;
}

// Harness self-checks: the shrinker must land on the boundary
// counterexample, and a passing property must report success.

TEST(PropertyHarness, ShrinksToTheBoundaryCounterexample) {
  auto outcome = proptest::RunProperty(7, 200, [](proptest::Case& c) {
    const uint64_t x = c.Range("x", 0, 1000);
    if (x > 100) return std::string("over 100");
    return std::string();
  });
  ASSERT_FALSE(outcome.ok);
  // Binary shrinking must land exactly on the smallest failing value.
  EXPECT_EQ(outcome.counterexample, "x=101");
  EXPECT_EQ(outcome.message, "over 100");
}

TEST(PropertyHarness, PassingPropertyReportsSuccess) {
  auto outcome = proptest::RunProperty(11, 50, [](proptest::Case& c) {
    const uint64_t lo = c.Range("lo", 5, 10);
    return lo >= 5 && lo <= 10 ? std::string() : std::string("out of range");
  });
  EXPECT_TRUE(outcome.ok);
  EXPECT_TRUE(outcome.message.empty());
}

}  // namespace
}  // namespace peercache
