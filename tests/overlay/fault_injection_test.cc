// Edge-case regressions and acceptance checks for the fault-injection
// layer (docs/RESILIENCE.md):
//  * FaultPlan predicate determinism and probability bounds,
//  * lookups originated at a just-departed node,
//  * single-node overlays, directly and through the stable engine,
//  * a zero auxiliary budget through the full churn path under faults,
//  * the headline resilience claim — at a 20% per-attempt drop rate the
//    retry policy keeps delivery at >= 99% while the no-retry baseline
//    degrades measurably,
//  * thread-count invariance of the resilience telemetry,
//  * dead-entry eviction reports healing the holder's auxiliary list.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "chord/chord_network.h"
#include "common/bits.h"
#include "common/fault.h"
#include "common/random.h"
#include "common/status.h"
#include "experiments/generic_experiment.h"
#include "pastry/pastry_network.h"

namespace peercache {
namespace {

using experiments::ChordPolicy;
using experiments::ChurnConfig;
using experiments::ExperimentConfig;
using experiments::PastryPolicy;
using experiments::RunResult;
using experiments::SelectorKind;

TEST(FaultPlan, ProbabilityBoundsAndDeterminism) {
  fault::FaultConfig cfg;
  cfg.drop_prob = 0.0;
  cfg.fail_prob = 0.0;
  cfg.stale_prob = 0.0;
  cfg.seed = 42;
  const fault::FaultPlan never(cfg);
  cfg.drop_prob = 1.0;
  cfg.fail_prob = 1.0;
  cfg.stale_prob = 1.0;
  const fault::FaultPlan always(cfg);
  cfg.drop_prob = 0.3;
  const fault::FaultPlan sometimes(cfg);

  int fired = 0;
  for (uint64_t i = 0; i < 2000; ++i) {
    const uint64_t key = i * 7919, from = i * 104729, to = i * 1299709;
    EXPECT_FALSE(never.DropForward(key, from, to, 0));
    EXPECT_FALSE(never.FailStopped(key, from));
    EXPECT_FALSE(never.StaleBelievedAlive(key, from, to));
    EXPECT_TRUE(always.DropForward(key, from, to, 0));
    EXPECT_TRUE(always.FailStopped(key, from));
    EXPECT_TRUE(always.StaleBelievedAlive(key, from, to));
    const bool d = sometimes.DropForward(key, from, to, 3);
    EXPECT_EQ(d, sometimes.DropForward(key, from, to, 3));  // stateless
    if (d) ++fired;
  }
  // 2000 Bernoulli(0.3) draws: expect ~600, allow a generous band.
  EXPECT_GT(fired, 450);
  EXPECT_LT(fired, 750);

  // The attempt counter decorrelates retransmissions: a dropped message is
  // not deterministically dropped forever.
  int differs = 0;
  for (uint64_t i = 0; i < 200; ++i) {
    if (sometimes.DropForward(i, 1, 2, 0) != sometimes.DropForward(i, 1, 2, 1)) {
      ++differs;
    }
  }
  EXPECT_GT(differs, 0);
}

template <typename Net>
void ExpectOriginDepartedUnavailable(Net& net, uint64_t origin,
                                     uint64_t key) {
  ASSERT_TRUE(net.RemoveNode(origin).ok());
  overlay::RouteResult route;
  EXPECT_EQ(net.LookupInto(origin, key, route, nullptr, nullptr).code(),
            StatusCode::kUnavailable);
  fault::FaultConfig cfg;
  cfg.drop_prob = 0.5;
  cfg.seed = 3;
  const fault::FaultPlan plan(cfg);
  EXPECT_EQ(net.LookupInto(origin, key, route, nullptr, &plan).code(),
            StatusCode::kUnavailable);
}

TEST(FaultEdgeCases, LookupFromJustDepartedNodeIsUnavailable) {
  Rng rng(5);
  auto ids = rng.SampleDistinct(uint64_t{1} << 16, 16);
  chord::ChordParams cp;
  cp.bits = 16;
  chord::ChordNetwork cnet(cp);
  for (uint64_t id : ids) ASSERT_TRUE(cnet.AddNode(id).ok());
  cnet.StabilizeAll();
  ExpectOriginDepartedUnavailable(cnet, ids[0], ids[5]);

  pastry::PastryParams pp;
  pp.bits = 16;
  pastry::PastryNetwork pnet(pp, 5);
  for (uint64_t id : ids) ASSERT_TRUE(pnet.AddNode(id).ok());
  pnet.StabilizeAll();
  ExpectOriginDepartedUnavailable(pnet, ids[0], ids[5]);
}

template <typename Net>
void ExpectSingleNodeSelfDelivery(Net& net, uint64_t self) {
  fault::FaultConfig cfg;
  cfg.drop_prob = 0.9;  // no forwards exist, so nothing can fail
  cfg.fail_prob = 0.9;
  cfg.stale_prob = 1.0;
  cfg.seed = 11;
  const fault::FaultPlan plan(cfg);
  for (const fault::FaultPlan* p : {(const fault::FaultPlan*)nullptr, &plan}) {
    for (uint64_t key : {uint64_t{0}, self, uint64_t{0xFFFF}}) {
      overlay::RouteResult route;
      ASSERT_TRUE(net.LookupInto(self, key, route, nullptr, p).ok());
      EXPECT_TRUE(route.success);
      EXPECT_EQ(route.destination, self);
      EXPECT_EQ(route.hops, 0);
      EXPECT_EQ(route.retries, 0);
      EXPECT_TRUE(route.path.empty());
    }
  }
}

TEST(FaultEdgeCases, SingleNodeNetworkDeliversLocally) {
  chord::ChordParams cp;
  cp.bits = 16;
  chord::ChordNetwork cnet(cp);
  ASSERT_TRUE(cnet.AddNode(1234).ok());
  cnet.StabilizeAll();
  ExpectSingleNodeSelfDelivery(cnet, 1234);

  pastry::PastryParams pp;
  pp.bits = 16;
  pastry::PastryNetwork pnet(pp, 7);
  ASSERT_TRUE(pnet.AddNode(1234).ok());
  pnet.StabilizeAll();
  ExpectSingleNodeSelfDelivery(pnet, 1234);
}

ExperimentConfig TinyConfig() {
  ExperimentConfig cfg;
  cfg.bits = 16;
  cfg.n_nodes = 1;
  cfg.k = 4;
  cfg.n_items = 64;
  cfg.warmup_queries_per_node = 20;
  cfg.measure_queries_per_node = 20;
  cfg.threads = 1;
  cfg.seed = 9;
  return cfg;
}

TEST(FaultEdgeCases, SingleNodeStableRunThroughEngine) {
  ExperimentConfig cfg = TinyConfig();
  cfg.faults.drop_prob = 0.5;
  cfg.faults.seed = 21;
  auto chord = experiments::RunStable<ChordPolicy>(cfg, SelectorKind::kOptimal);
  ASSERT_TRUE(chord.ok()) << chord.status().ToString();
  EXPECT_TRUE(chord->fault_injection);
  EXPECT_EQ(chord->resilience.delivered, chord->resilience.lookups);
  EXPECT_EQ(chord->resilience.retries, 0u);  // self-delivery never forwards
  auto pastry =
      experiments::RunStable<PastryPolicy>(cfg, SelectorKind::kOptimal);
  ASSERT_TRUE(pastry.ok()) << pastry.status().ToString();
  EXPECT_EQ(pastry->resilience.delivered, pastry->resilience.lookups);
}

TEST(FaultEdgeCases, ZeroAuxiliaryBudgetThroughChurnPathUnderFaults) {
  ExperimentConfig cfg = TinyConfig();
  cfg.n_nodes = 48;
  cfg.k = 0;  // no auxiliary budget: selection must be a no-op, not a crash
  cfg.faults.drop_prob = 0.1;
  cfg.faults.stale_prob = 0.5;
  cfg.faults.seed = 33;
  ChurnConfig churn;
  churn.mean_lifetime_s = 200.0;
  churn.warmup_s = 200.0;
  churn.measure_s = 200.0;
  for (int pass = 0; pass < 2; ++pass) {
    auto run = pass == 0 ? experiments::RunChurn<ChordPolicy>(
                               cfg, churn, SelectorKind::kOptimal)
                         : experiments::RunChurn<PastryPolicy>(
                               cfg, churn, SelectorKind::kOptimal);
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    EXPECT_TRUE(run->fault_injection);
    EXPECT_GT(run->resilience.lookups, 0u);
    EXPECT_LE(run->resilience.delivered, run->resilience.lookups);
    EXPECT_EQ(run->aux_route_hops, 0u) << "k=0 must never route through aux";
  }
}

ExperimentConfig GateConfig(int threads) {
  ExperimentConfig cfg;
  cfg.bits = 32;
  cfg.n_nodes = 256;
  cfg.k = 8;
  cfg.n_items = 256;
  cfg.warmup_queries_per_node = 40;
  cfg.measure_queries_per_node = 40;
  cfg.threads = threads;
  cfg.seed = 4;
  cfg.faults.drop_prob = 0.2;
  cfg.faults.seed = 17;
  return cfg;
}

TEST(FaultResilience, RetriesKeepDeliveryAboveNinetyNinePercent) {
  for (int pass = 0; pass < 2; ++pass) {
    ExperimentConfig with = GateConfig(1);
    auto retry = pass == 0 ? experiments::RunStable<ChordPolicy>(
                                 with, SelectorKind::kOptimal)
                           : experiments::RunStable<PastryPolicy>(
                                 with, SelectorKind::kOptimal);
    ASSERT_TRUE(retry.ok()) << retry.status().ToString();
    with.faults.retry = false;
    auto baseline = pass == 0 ? experiments::RunStable<ChordPolicy>(
                                    with, SelectorKind::kOptimal)
                              : experiments::RunStable<PastryPolicy>(
                                    with, SelectorKind::kOptimal);
    ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
    const double with_rate = retry->resilience.SuccessRate();
    const double without_rate = baseline->resilience.SuccessRate();
    EXPECT_GE(with_rate, 0.99) << (pass == 0 ? "chord" : "pastry");
    EXPECT_GT(with_rate, without_rate + 0.05)
        << (pass == 0 ? "chord" : "pastry")
        << ": the no-retry baseline should be measurably degraded";
    EXPECT_GT(retry->resilience.retries, 0u);
  }
}

TEST(FaultResilience, ResilienceTelemetryIsThreadCountInvariant) {
  auto one = experiments::RunStable<ChordPolicy>(GateConfig(1),
                                                 SelectorKind::kOptimal);
  auto four = experiments::RunStable<ChordPolicy>(GateConfig(4),
                                                  SelectorKind::kOptimal);
  ASSERT_TRUE(one.ok() && four.ok());
  EXPECT_EQ(one->avg_hops, four->avg_hops);
  EXPECT_EQ(one->resilience.lookups, four->resilience.lookups);
  EXPECT_EQ(one->resilience.delivered, four->resilience.delivered);
  EXPECT_EQ(one->resilience.retried_lookups, four->resilience.retried_lookups);
  EXPECT_EQ(one->resilience.retries, four->resilience.retries);
  EXPECT_EQ(one->resilience.dropped_forwards, four->resilience.dropped_forwards);
  EXPECT_EQ(one->resilience.failstop_skips, four->resilience.failstop_skips);
  EXPECT_EQ(one->resilience.stale_forwards, four->resilience.stale_forwards);
  EXPECT_EQ(one->resilience.budget_exhausted, four->resilience.budget_exhausted);
  EXPECT_EQ(one->resilience.dead_entry_evictions,
            four->resilience.dead_entry_evictions);
}

TEST(FaultResilience, NoRetryAbortsOnFirstFailureAndFullDropExhaustsBudget) {
  Rng rng(8);
  auto ids = rng.SampleDistinct(uint64_t{1} << 16, 32);
  chord::ChordParams cp;
  cp.bits = 16;
  chord::ChordNetwork net(cp);
  for (uint64_t id : ids) ASSERT_TRUE(net.AddNode(id).ok());
  net.StabilizeAll();
  // A key owned by someone else so the route must forward at least once.
  const uint64_t origin = ids[0];
  uint64_t key = 0;
  for (int t = 0; t < 64; ++t) {
    key = rng.NextU64() & LowBitMask(16);
    if (net.ResponsibleNode(key).value() != origin) break;
  }
  ASSERT_NE(net.ResponsibleNode(key).value(), origin);

  fault::FaultConfig cfg;
  cfg.drop_prob = 1.0;
  cfg.seed = 2;
  cfg.retry = false;
  overlay::RouteResult route;
  const fault::FaultPlan aborting(cfg);
  ASSERT_TRUE(net.LookupInto(origin, key, route, nullptr, &aborting).ok());
  EXPECT_FALSE(route.success);
  EXPECT_EQ(route.retries, 1);
  EXPECT_EQ(route.hops, 0);
  EXPECT_TRUE(route.path.empty());

  cfg.retry = true;  // every attempt still drops: the budget must run out
  const fault::FaultPlan exhausting(cfg);
  ASSERT_TRUE(net.LookupInto(origin, key, route, nullptr, &exhausting).ok());
  EXPECT_FALSE(route.success);
  EXPECT_TRUE(route.budget_exhausted);
  EXPECT_EQ(route.retries, cfg.max_retries + 1);
}

TEST(FaultResilience, DeadEvictionReportHealsTheAuxiliaryEntry) {
  Rng rng(12);
  auto ids = rng.SampleDistinct(uint64_t{1} << 16, 40);
  chord::ChordParams cp;
  cp.bits = 16;
  chord::ChordNetwork net(cp);
  for (uint64_t id : ids) ASSERT_TRUE(net.AddNode(id).ok());
  net.StabilizeAll();

  // A victim that is an auxiliary of the origin but not one of its core
  // entries, so evicting the auxiliary removes the origin's only path to it.
  const uint64_t origin = ids[0];
  const auto core = net.CoreNeighborIds(origin);
  uint64_t victim = 0;
  bool found = false;
  for (uint64_t id : ids) {
    if (id != origin &&
        std::find(core.begin(), core.end(), id) == core.end()) {
      victim = id;
      found = true;
      break;
    }
  }
  ASSERT_TRUE(found) << "network too small: every node is a core neighbor";
  ASSERT_TRUE(net.SetAuxiliaries(origin, {victim}).ok());
  ASSERT_TRUE(net.RemoveNode(victim).ok());

  fault::FaultConfig cfg;
  cfg.stale_prob = 1.0;  // the origin still believes the dead entry alive
  cfg.seed = 6;
  const fault::FaultPlan plan(cfg);
  overlay::RouteResult route;
  // Key = victim's id: the dead auxiliary is the closest entry and gets
  // probed first.
  ASSERT_TRUE(net.LookupInto(origin, victim, route, nullptr, &plan).ok());
  const std::pair<uint64_t, uint64_t> pair{origin, victim};
  ASSERT_NE(std::find(route.dead_evictions.begin(),
                      route.dead_evictions.end(), pair),
            route.dead_evictions.end())
      << "the stale forward must report the dead auxiliary for eviction";

  // Apply the eviction the way the churn engine does, then replay: the
  // healed table must not probe the dead entry again.
  net.EraseAuxiliary(origin, victim);
  ASSERT_TRUE(net.LookupInto(origin, victim, route, nullptr, &plan).ok());
  EXPECT_EQ(std::find(route.dead_evictions.begin(),
                      route.dead_evictions.end(), pair),
            route.dead_evictions.end());
}

}  // namespace
}  // namespace peercache
