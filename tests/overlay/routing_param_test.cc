// Parameterized routing invariants across both overlays:
//   * stable overlays answer every lookup at the responsible node,
//   * hop counts respect the O(log n)-ish steady-state bound,
//   * installing auxiliaries never makes any single lookup longer (Chord's
//     distance-greedy policy) and never breaks delivery (both overlays),
//   * routes terminate within the hop cap even with many dead entries.

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "chord/chord_network.h"
#include "common/bits.h"
#include "common/random.h"
#include "pastry/pastry_network.h"

namespace peercache {
namespace {

struct OverlayCell {
  int bits;
  int n_nodes;
  int aux_per_node;  // random auxiliaries installed everywhere
};

class OverlaySweep : public ::testing::TestWithParam<OverlayCell> {
 protected:
  std::vector<uint64_t> MakeIds(Rng& rng) {
    const OverlayCell& c = GetParam();
    const uint64_t space =
        c.bits == 64 ? ~uint64_t{0} : (uint64_t{1} << c.bits);
    return rng.SampleDistinct(space, static_cast<size_t>(c.n_nodes));
  }
};

TEST_P(OverlaySweep, ChordStableLookupsExactAndBounded) {
  const OverlayCell& c = GetParam();
  Rng rng(101 + static_cast<uint64_t>(c.n_nodes));
  auto ids = MakeIds(rng);
  chord::ChordParams params;
  params.bits = c.bits;
  chord::ChordNetwork net(params);
  for (uint64_t id : ids) ASSERT_TRUE(net.AddNode(id).ok());
  net.StabilizeAll();
  // Optional random auxiliaries on every node.
  if (c.aux_per_node > 0) {
    for (uint64_t id : ids) {
      std::vector<uint64_t> aux;
      for (int a = 0; a < c.aux_per_node; ++a) {
        uint64_t pick = ids[static_cast<size_t>(rng.UniformU64(ids.size()))];
        if (pick != id) aux.push_back(pick);
      }
      ASSERT_TRUE(net.SetAuxiliaries(id, aux).ok());
    }
  }
  for (int t = 0; t < 300; ++t) {
    const uint64_t key = rng.NextU64() & LowBitMask(c.bits);
    const uint64_t origin =
        ids[static_cast<size_t>(rng.UniformU64(ids.size()))];
    auto route = net.Lookup(origin, key);
    ASSERT_TRUE(route.ok());
    EXPECT_TRUE(route->success);
    EXPECT_EQ(route->destination, net.ResponsibleNode(key).value());
    EXPECT_LE(route->hops, c.bits);
    EXPECT_EQ(route->path.size(), static_cast<size_t>(route->hops));
  }
}

TEST_P(OverlaySweep, PastryStableLookupsExactAndBounded) {
  const OverlayCell& c = GetParam();
  Rng rng(202 + static_cast<uint64_t>(c.n_nodes));
  auto ids = MakeIds(rng);
  pastry::PastryParams params;
  params.bits = c.bits;
  pastry::PastryNetwork net(params, 5);
  for (uint64_t id : ids) ASSERT_TRUE(net.AddNode(id).ok());
  net.StabilizeAll();
  if (c.aux_per_node > 0) {
    for (uint64_t id : ids) {
      std::vector<uint64_t> aux;
      for (int a = 0; a < c.aux_per_node; ++a) {
        uint64_t pick = ids[static_cast<size_t>(rng.UniformU64(ids.size()))];
        if (pick != id) aux.push_back(pick);
      }
      ASSERT_TRUE(net.SetAuxiliaries(id, aux).ok());
    }
  }
  for (int t = 0; t < 300; ++t) {
    const uint64_t key = rng.NextU64() & LowBitMask(c.bits);
    const uint64_t origin =
        ids[static_cast<size_t>(rng.UniformU64(ids.size()))];
    auto route = net.Lookup(origin, key);
    ASSERT_TRUE(route.ok());
    EXPECT_TRUE(route->success);
    EXPECT_EQ(route->destination, net.ResponsibleNode(key).value());
    EXPECT_LE(route->hops, c.bits + 2);
  }
}

TEST_P(OverlaySweep, ChordAuxiliariesHelpOnAggregate) {
  // Greedy routing is not per-query monotone in the table contents (a
  // longer first jump can land at a node with worse onward fingers), but a
  // superset of entries must help on aggregate, and the first hop's
  // remaining distance can never get worse.
  const OverlayCell& c = GetParam();
  Rng rng(303 + static_cast<uint64_t>(c.bits));
  auto ids = MakeIds(rng);
  chord::ChordParams params;
  params.bits = c.bits;
  chord::ChordNetwork net(params);
  for (uint64_t id : ids) ASSERT_TRUE(net.AddNode(id).ok());
  net.StabilizeAll();
  const uint64_t origin = ids[0];
  std::vector<uint64_t> keys;
  int64_t base_total = 0;
  for (int t = 0; t < 300; ++t) {
    keys.push_back(rng.NextU64() & LowBitMask(c.bits));
    base_total += net.Lookup(origin, keys.back())->hops;
  }
  std::vector<uint64_t> aux;
  for (size_t i = 1; i < ids.size() && aux.size() < 12; i += 3) {
    aux.push_back(ids[i]);
  }
  ASSERT_TRUE(net.SetAuxiliaries(origin, aux).ok());
  int64_t aux_total = 0;
  for (uint64_t key : keys) {
    auto route = net.Lookup(origin, key);
    EXPECT_TRUE(route->success);
    aux_total += route->hops;
  }
  EXPECT_LE(aux_total, base_total);
}

TEST_P(OverlaySweep, LookupsTerminateUnderMassCrash) {
  const OverlayCell& c = GetParam();
  if (c.n_nodes < 8) GTEST_SKIP() << "needs enough nodes to crash some";
  Rng rng(404);
  auto ids = MakeIds(rng);
  chord::ChordParams params;
  params.bits = c.bits;
  chord::ChordNetwork net(params);
  for (uint64_t id : ids) ASSERT_TRUE(net.AddNode(id).ok());
  net.StabilizeAll();
  // Crash half the overlay without telling anyone.
  for (size_t i = 0; i < ids.size(); i += 2) {
    ASSERT_TRUE(net.RemoveNode(ids[i]).ok());
  }
  for (int t = 0; t < 200; ++t) {
    const uint64_t key = rng.NextU64() & LowBitMask(c.bits);
    uint64_t origin;
    do {
      origin = ids[static_cast<size_t>(rng.UniformU64(ids.size()))];
    } while (!net.IsAlive(origin));
    auto route = net.Lookup(origin, key);
    ASSERT_TRUE(route.ok());
    EXPECT_LT(route->hops, params.max_route_hops) << "route must terminate";
    EXPECT_TRUE(net.IsAlive(route->destination));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, OverlaySweep,
    ::testing::Values(OverlayCell{8, 4, 0}, OverlayCell{10, 16, 2},
                      OverlayCell{16, 64, 0}, OverlayCell{16, 64, 8},
                      OverlayCell{20, 150, 5}, OverlayCell{32, 200, 10},
                      OverlayCell{64, 100, 6}),
    [](const ::testing::TestParamInfo<OverlayCell>& info) {
      return "bits" + std::to_string(info.param.bits) + "_n" +
             std::to_string(info.param.n_nodes) + "_aux" +
             std::to_string(info.param.aux_per_node);
    });

}  // namespace
}  // namespace peercache
