#include "trie/binary_trie.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "common/bits.h"
#include "common/random.h"

namespace peercache::trie {
namespace {

LeafInfo MakeLeaf(uint64_t id, double f, bool core = false) {
  LeafInfo leaf;
  leaf.id = id;
  leaf.frequency = f;
  leaf.is_core = core;
  return leaf;
}

TEST(BinaryTrie, EmptyTrie) {
  BinaryTrie t(8);
  EXPECT_EQ(t.root(), BinaryTrie::kNil);
  EXPECT_EQ(t.leaf_count(), 0u);
  EXPECT_TRUE(t.CheckInvariants().ok());
  EXPECT_FALSE(t.Contains(3));
}

TEST(BinaryTrie, SingleInsert) {
  BinaryTrie t(8);
  auto r = t.Insert(MakeLeaf(0b10110001, 3.0));
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(t.Contains(0b10110001));
  EXPECT_EQ(t.leaf_count(), 1u);
  ASSERT_TRUE(t.CheckInvariants().ok());
  // Root at depth 0, leaf at depth 8, edge length 8.
  int leaf = t.FindLeaf(0b10110001);
  EXPECT_EQ(t.Depth(leaf), 8);
  EXPECT_EQ(t.EdgeLength(leaf), 8);
  EXPECT_EQ(t.Parent(leaf), t.root());
  EXPECT_DOUBLE_EQ(t.SubtreeFrequency(t.root()), 3.0);
}

TEST(BinaryTrie, SplitCreatesBranchAtLcp) {
  BinaryTrie t(8);
  ASSERT_TRUE(t.Insert(MakeLeaf(0b10110000, 1.0)).ok());
  ASSERT_TRUE(t.Insert(MakeLeaf(0b10111100, 2.0)).ok());
  ASSERT_TRUE(t.CheckInvariants().ok());
  int a = t.FindLeaf(0b10110000);
  int b = t.FindLeaf(0b10111100);
  // lcp = 4 -> common ancestor at depth 4.
  EXPECT_EQ(t.Parent(a), t.Parent(b));
  EXPECT_EQ(t.Depth(t.Parent(a)), 4);
  EXPECT_DOUBLE_EQ(t.SubtreeFrequency(t.Parent(a)), 3.0);
}

TEST(BinaryTrie, RejectsDuplicatesAndOutOfRange) {
  BinaryTrie t(8);
  ASSERT_TRUE(t.Insert(MakeLeaf(5, 1.0)).ok());
  EXPECT_EQ(t.Insert(MakeLeaf(5, 2.0)).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(t.Insert(MakeLeaf(256, 1.0)).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(t.Insert(MakeLeaf(6, -1.0)).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(t.Remove(9).status().code(), StatusCode::kNotFound);
}

TEST(BinaryTrie, RemoveSplicesUnaryVertices) {
  BinaryTrie t(8);
  ASSERT_TRUE(t.Insert(MakeLeaf(0b10110000, 1.0)).ok());
  ASSERT_TRUE(t.Insert(MakeLeaf(0b10111100, 2.0)).ok());
  ASSERT_TRUE(t.Insert(MakeLeaf(0b00000001, 4.0)).ok());
  ASSERT_TRUE(t.CheckInvariants().ok());
  ASSERT_TRUE(t.Remove(0b10111100).ok());
  ASSERT_TRUE(t.CheckInvariants().ok());
  // The depth-4 branch vertex must be gone: remaining leaf hangs off root's
  // 1-branch directly.
  int a = t.FindLeaf(0b10110000);
  EXPECT_EQ(t.Parent(a), t.root());
  EXPECT_EQ(t.leaf_count(), 2u);
}

TEST(BinaryTrie, RemoveToEmpty) {
  BinaryTrie t(8);
  ASSERT_TRUE(t.Insert(MakeLeaf(1, 1.0)).ok());
  ASSERT_TRUE(t.Insert(MakeLeaf(2, 1.0)).ok());
  ASSERT_TRUE(t.Remove(1).ok());
  ASSERT_TRUE(t.Remove(2).ok());
  EXPECT_EQ(t.root(), BinaryTrie::kNil);
  EXPECT_EQ(t.leaf_count(), 0u);
  EXPECT_TRUE(t.CheckInvariants().ok());
  // Reusable after emptying.
  ASSERT_TRUE(t.Insert(MakeLeaf(3, 1.0)).ok());
  EXPECT_TRUE(t.CheckInvariants().ok());
}

TEST(BinaryTrie, AggregatesTrackCoreAndCandidates) {
  BinaryTrie t(8);
  ASSERT_TRUE(t.Insert(MakeLeaf(1, 1.0)).ok());
  ASSERT_TRUE(t.Insert(MakeLeaf(2, 2.0, /*core=*/true)).ok());
  EXPECT_EQ(t.CandidateCount(t.root()), 1);
  EXPECT_TRUE(t.SubtreeHasNeighbor(t.root()));
  ASSERT_TRUE(t.SetCore(2, false).ok());
  EXPECT_EQ(t.CandidateCount(t.root()), 2);
  EXPECT_FALSE(t.SubtreeHasNeighbor(t.root()));
  ASSERT_TRUE(t.SetPreselected(1, true).ok());
  EXPECT_EQ(t.CandidateCount(t.root()), 1);
  EXPECT_TRUE(t.SubtreeHasNeighbor(t.root()));
  ASSERT_TRUE(t.CheckInvariants().ok());
}

TEST(BinaryTrie, UpdateFrequencyPropagates) {
  BinaryTrie t(8);
  ASSERT_TRUE(t.Insert(MakeLeaf(1, 1.0)).ok());
  ASSERT_TRUE(t.Insert(MakeLeaf(200, 2.0)).ok());
  ASSERT_TRUE(t.UpdateFrequency(1, 10.0).ok());
  EXPECT_DOUBLE_EQ(t.SubtreeFrequency(t.root()), 12.0);
  ASSERT_TRUE(t.CheckInvariants().ok());
  EXPECT_EQ(t.UpdateFrequency(1, -3.0).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(BinaryTrie, PairwiseDistanceEqualsHeightOfCommonAncestor) {
  // Proposition 4.1: pastry distance = bits - depth(LCA) for every pair.
  Rng rng(31415);
  const int bits = 10;
  BinaryTrie t(bits);
  auto ids = rng.SampleDistinct(uint64_t{1} << bits, 60);
  for (uint64_t id : ids) ASSERT_TRUE(t.Insert(MakeLeaf(id, 1.0)).ok());
  ASSERT_TRUE(t.CheckInvariants().ok());
  for (size_t i = 0; i < ids.size(); i += 7) {
    for (size_t j = 0; j < ids.size(); j += 5) {
      if (i == j) continue;
      // Find LCA by climbing from the deeper leaf.
      int a = t.FindLeaf(ids[i]);
      int b = t.FindLeaf(ids[j]);
      std::set<int> a_path;
      for (int v = a; v != BinaryTrie::kNil; v = t.Parent(v)) a_path.insert(v);
      int lca = b;
      while (!a_path.count(lca)) lca = t.Parent(lca);
      EXPECT_EQ(bits - t.Depth(lca),
                bits - CommonPrefixLength(ids[i], ids[j], bits));
    }
  }
}

TEST(BinaryTrie, RandomizedMutationsKeepInvariants) {
  Rng rng(2718);
  const int bits = 12;
  BinaryTrie t(bits);
  std::map<uint64_t, double> shadow;
  for (int step = 0; step < 2000; ++step) {
    uint64_t id = rng.UniformU64(uint64_t{1} << bits);
    int op = static_cast<int>(rng.UniformU64(3));
    if (op == 0) {
      double f = static_cast<double>(rng.UniformU64(100));
      if (shadow.count(id)) {
        EXPECT_FALSE(t.Insert(MakeLeaf(id, f)).ok());
      } else {
        ASSERT_TRUE(t.Insert(MakeLeaf(id, f)).ok());
        shadow[id] = f;
      }
    } else if (op == 1 && !shadow.empty()) {
      if (shadow.count(id)) {
        ASSERT_TRUE(t.Remove(id).ok());
        shadow.erase(id);
      } else {
        EXPECT_FALSE(t.Remove(id).ok());
      }
    } else if (shadow.count(id)) {
      double f = static_cast<double>(rng.UniformU64(100));
      ASSERT_TRUE(t.UpdateFrequency(id, f).ok());
      shadow[id] = f;
    }
    if (step % 100 == 0) {
      ASSERT_TRUE(t.CheckInvariants().ok()) << "step " << step;
      EXPECT_EQ(t.leaf_count(), shadow.size());
      double total = 0;
      for (auto& [i, f] : shadow) total += f;
      if (t.root() != BinaryTrie::kNil) {
        EXPECT_NEAR(t.SubtreeFrequency(t.root()), total, 1e-9);
      }
    }
  }
}

TEST(BinaryTrie, VersionBumpsOnMutation) {
  BinaryTrie t(8);
  uint64_t v0 = t.version();
  ASSERT_TRUE(t.Insert(MakeLeaf(1, 1.0)).ok());
  EXPECT_GT(t.version(), v0);
  uint64_t v1 = t.version();
  ASSERT_TRUE(t.UpdateFrequency(1, 2.0).ok());
  EXPECT_GT(t.version(), v1);
}

TEST(BinaryTrie, AllLeavesReturnsEveryId) {
  BinaryTrie t(8);
  std::set<uint64_t> want{3, 77, 200, 254};
  for (uint64_t id : want) ASSERT_TRUE(t.Insert(MakeLeaf(id, 1.0)).ok());
  std::set<uint64_t> got;
  for (int v : t.AllLeaves()) got.insert(t.LeafAt(v).id);
  EXPECT_EQ(got, want);
}

}  // namespace
}  // namespace peercache::trie
