// Compile-and-smoke test for the umbrella header: every public API must be
// reachable through a single include, and a minimal end-to-end flow must
// work using only what it exposes.

#include "peercache.h"

#include <gtest/gtest.h>

namespace {

TEST(Umbrella, EndToEndThroughSingleInclude) {
  using namespace peercache;

  chord::ChordParams params;
  params.bits = 16;
  chord::ChordNetwork net(params);
  Rng rng(1);
  auto ids = rng.SampleDistinct(uint64_t{1} << 16, 64);
  for (uint64_t id : ids) ASSERT_TRUE(net.AddNode(id).ok());
  net.StabilizeAll();

  // Observe a skewed stream at one node.
  ZipfDistribution zipf(ids.size(), 1.2);
  auxsel::FrequencyTable freq;
  for (int q = 0; q < 500; ++q) {
    freq.Record(ids[zipf.Sample(rng) - 1]);
  }

  auxsel::SelectionInput input;
  input.bits = params.bits;
  input.self_id = ids[0];
  input.k = 6;
  input.core_ids = net.CoreNeighborIds(ids[0]);
  input.peers = freq.Snapshot(ids[0]);

  auto sel = auxsel::SelectChordFast(input);
  ASSERT_TRUE(sel.ok()) << sel.status();
  EXPECT_LE(sel->chosen.size(), 6u);
  ASSERT_TRUE(net.SetAuxiliaries(ids[0], sel->chosen).ok());

  auto route = net.Lookup(ids[0], ids[5]);
  ASSERT_TRUE(route.ok());
  EXPECT_TRUE(route->success);
}

TEST(Umbrella, PastryAndExperimentsReachable) {
  using namespace peercache;
  pastry::PastryParams params;
  params.bits = 12;
  pastry::PastryNetwork net(params, 3);
  ASSERT_TRUE(net.AddNode(7).ok());

  experiments::ExperimentConfig cfg;
  EXPECT_EQ(cfg.bits, 32);

  itemcache::ItemCache cache(4, 5.0);
  cache.Store(1, 0, 0.0);
  EXPECT_TRUE(cache.Lookup(1, 1.0).hit);

  sim::EventQueue eq;
  int fired = 0;
  eq.ScheduleAt(1.0, [&] { ++fired; });
  eq.RunUntil(2.0);
  EXPECT_EQ(fired, 1);
}

}  // namespace
