#include "workload/workload.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace peercache::workload {
namespace {

TEST(ItemSpace, KeysDistinctAndInRange) {
  ItemSpace items(16, 5000, 42);
  EXPECT_EQ(items.n_items(), 5000u);
  std::set<uint64_t> seen;
  for (size_t i = 0; i < items.n_items(); ++i) {
    uint64_t key = items.ItemKey(i);
    EXPECT_LT(key, uint64_t{1} << 16);
    EXPECT_TRUE(seen.insert(key).second) << "duplicate key";
  }
}

TEST(ItemSpace, DeterministicForSeed) {
  ItemSpace a(20, 100, 7), b(20, 100, 7), c(20, 100, 8);
  EXPECT_EQ(a.keys(), b.keys());
  EXPECT_NE(a.keys(), c.keys());
}

TEST(PopularityModel, ListsArePermutations) {
  PopularityModel pop(50, 1.2, 5, 99);
  EXPECT_EQ(pop.n_lists(), 5);
  for (int list = 0; list < 5; ++list) {
    std::set<size_t> seen;
    for (size_t rank = 1; rank <= 50; ++rank) {
      seen.insert(pop.ItemAtRank(list, rank));
    }
    EXPECT_EQ(seen.size(), 50u);
  }
}

TEST(PopularityModel, ListsDiffer) {
  PopularityModel pop(100, 1.2, 5, 99);
  int differing = 0;
  for (size_t rank = 1; rank <= 100; ++rank) {
    if (pop.ItemAtRank(0, rank) != pop.ItemAtRank(1, rank)) ++differing;
  }
  EXPECT_GT(differing, 50) << "two lists should rank items differently";
}

TEST(PopularityModel, SampleFollowsZipfOverRanks) {
  PopularityModel pop(64, 1.2, 2, 5);
  Rng rng(6);
  std::map<size_t, int> counts;
  for (int i = 0; i < 30000; ++i) ++counts[pop.SampleItem(0, rng)];
  // The rank-1 item of list 0 must be the most frequent draw.
  size_t hottest = pop.ItemAtRank(0, 1);
  for (const auto& [item, count] : counts) {
    EXPECT_LE(count, counts[hottest] + 1) << "item " << item;
  }
}

TEST(QueryWorkload, ListAssignmentStableAndCovering) {
  ItemSpace items(16, 100, 1);
  PopularityModel pop(100, 1.2, 5, 2);
  QueryWorkload wl(items, pop, 3);
  std::set<int> lists;
  for (uint64_t node = 0; node < 200; ++node) {
    int l = wl.ListOf(node);
    EXPECT_EQ(l, wl.ListOf(node)) << "assignment must be sticky";
    EXPECT_GE(l, 0);
    EXPECT_LT(l, 5);
    lists.insert(l);
  }
  EXPECT_EQ(lists.size(), 5u) << "all lists should be used by 200 nodes";
}

TEST(QueryWorkload, SampleKeyReturnsItemKeys) {
  ItemSpace items(16, 50, 1);
  PopularityModel pop(50, 1.2, 1, 2);
  QueryWorkload wl(items, pop, 3);
  std::set<uint64_t> valid(items.keys().begin(), items.keys().end());
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(valid.count(wl.SampleKey(7, rng)));
  }
}

TEST(QueryWorkload, SingleListMakesNodesAgree) {
  // n_lists = 1 (the paper's Pastry setup): every node's hottest item is
  // the same.
  ItemSpace items(16, 40, 1);
  PopularityModel pop(40, 1.5, 1, 2);
  QueryWorkload wl(items, pop, 3);
  Rng rng(5);
  std::map<uint64_t, std::map<uint64_t, int>> counts;
  for (uint64_t node : {1u, 2u, 3u}) {
    for (int i = 0; i < 5000; ++i) ++counts[node][wl.SampleKey(node, rng)];
  }
  auto hottest = [&](uint64_t node) {
    uint64_t best = 0;
    int best_count = -1;
    for (auto& [k, c] : counts[node]) {
      if (c > best_count) {
        best = k;
        best_count = c;
      }
    }
    return best;
  };
  EXPECT_EQ(hottest(1), hottest(2));
  EXPECT_EQ(hottest(2), hottest(3));
}

}  // namespace
}  // namespace peercache::workload
