// Drift-workload generator tests: every property the concurrent engine
// relies on — seed determinism, per-node purity (results depend only on
// (list, query_index, rng), never on call order), rank-shuffle preserving
// the item set, and flash-crowd mass conservation.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/random.h"
#include "workload/drift.h"
#include "workload/workload.h"

namespace peercache::workload {
namespace {

constexpr size_t kItems = 64;
constexpr int kLists = 3;

DriftConfig Config(DriftKind kind, int period = 10) {
  DriftConfig c;
  c.kind = kind;
  c.period = period;
  c.max_epochs = 6;
  return c;
}

TEST(DriftModel, SampleKeyIsSeedDeterministic) {
  ItemSpace items(32, kItems, 5);
  PopularityModel pop(kItems, 1.0, kLists, 7);
  for (DriftKind kind : {DriftKind::kRankShuffle, DriftKind::kFlashCrowd}) {
    DriftModel a(items, pop, Config(kind));
    DriftModel b(items, pop, Config(kind));
    Rng ra(42), rb(42);
    for (int64_t q = 0; q < 200; ++q) {
      ASSERT_EQ(a.SampleKey(q % kLists ? 1 : 0, q, ra),
                b.SampleKey(q % kLists ? 1 : 0, q, rb))
          << DriftKindName(kind) << " query " << q;
    }
  }
}

TEST(DriftModel, SampleKeyIsPureInListQueryAndRng) {
  // The parallel engine interleaves nodes arbitrarily across threads; the
  // drifted key for (list, query_index) with a given RNG state must not
  // depend on what other nodes sampled in between.
  ItemSpace items(32, kItems, 5);
  PopularityModel pop(kItems, 1.0, kLists, 7);
  DriftModel model(items, pop, Config(DriftKind::kRankShuffle));

  // Node A alone.
  std::vector<uint64_t> alone;
  {
    Rng rng(1);
    for (int64_t q = 0; q < 50; ++q) alone.push_back(model.SampleKey(0, q, rng));
  }
  // Node A interleaved with node B (its own RNG stream).
  std::vector<uint64_t> interleaved;
  {
    Rng ra(1), rb(2);
    for (int64_t q = 0; q < 50; ++q) {
      (void)model.SampleKey(1, q, rb);
      interleaved.push_back(model.SampleKey(0, q, ra));
      (void)model.SampleKey(2, q, rb);
    }
  }
  EXPECT_EQ(alone, interleaved);
}

TEST(DriftModel, RankShuffleEpochsArePermutationsOfTheBase) {
  ItemSpace items(32, kItems, 5);
  PopularityModel pop(kItems, 1.0, kLists, 7);
  DriftModel model(items, pop, Config(DriftKind::kRankShuffle));

  for (int list = 0; list < kLists; ++list) {
    std::vector<size_t> base;
    for (size_t rank = 1; rank <= kItems; ++rank) {
      base.push_back(pop.ItemAtRank(list, rank));
    }
    std::vector<size_t> base_sorted = base;
    std::sort(base_sorted.begin(), base_sorted.end());
    for (int epoch = 0; epoch < model.config().max_epochs; ++epoch) {
      std::vector<size_t> cur;
      for (size_t rank = 1; rank <= kItems; ++rank) {
        cur.push_back(model.ItemAtRank(list, epoch, rank));
      }
      if (epoch == 0) {
        EXPECT_EQ(cur, base) << "epoch 0 must be the base assignment";
      }
      std::sort(cur.begin(), cur.end());
      EXPECT_EQ(cur, base_sorted)
          << "list " << list << " epoch " << epoch
          << " is not a permutation of the item set";
    }
  }
}

TEST(DriftModel, RankShuffleMovesABoundedFraction) {
  ItemSpace items(32, kItems, 5);
  PopularityModel pop(kItems, 1.0, kLists, 7);
  DriftConfig config = Config(DriftKind::kRankShuffle);
  config.shuffle_fraction = 0.25;
  DriftModel model(items, pop, config);

  const size_t budget = static_cast<size_t>(
      std::ceil(config.shuffle_fraction * static_cast<double>(kItems)));
  for (int epoch = 1; epoch < config.max_epochs; ++epoch) {
    size_t moved = 0;
    for (size_t rank = 1; rank <= kItems; ++rank) {
      if (model.ItemAtRank(0, epoch, rank) !=
          model.ItemAtRank(0, epoch - 1, rank)) {
        ++moved;
      }
    }
    EXPECT_LE(moved, budget) << "epoch " << epoch
                             << " re-shuffled more positions than configured";
  }
}

TEST(DriftModel, FlashCrowdFullBoostAlwaysHitsTheFlashItem) {
  ItemSpace items(32, kItems, 5);
  PopularityModel pop(kItems, 1.0, kLists, 7);
  DriftConfig config = Config(DriftKind::kFlashCrowd, /*period=*/10);
  config.flash_boost = 1.0;  // all mass diverted: every draw is the flash item
  DriftModel model(items, pop, config);

  Rng rng(9);
  for (int64_t q = 10; q < 20; ++q) {  // epoch 1: flash
    ASSERT_TRUE(model.IsFlashEpoch(model.EpochOf(q)));
    EXPECT_EQ(model.SampleKey(0, q, rng),
              items.ItemKey(model.FlashItem(model.EpochOf(q))));
  }
}

TEST(DriftModel, FlashCrowdCalmEpochsMatchTheBaseDistribution) {
  // Even (calm) epochs must reproduce the base sampling exactly — same rank
  // draw against the same rank->item assignment — so stationary stretches of
  // a flash-crowd run are bit-identical to the stationary workload.
  ItemSpace items(32, kItems, 5);
  PopularityModel pop(kItems, 1.0, kLists, 7);
  DriftModel model(items, pop, Config(DriftKind::kFlashCrowd, /*period=*/10));

  Rng drifted(3), base(3);
  for (int64_t q = 0; q < 10; ++q) {  // epoch 0: calm
    const uint64_t got = model.SampleKey(1, q, drifted);
    const size_t rank = pop.zipf().Sample(base);
    EXPECT_EQ(got, items.ItemKey(pop.ItemAtRank(1, rank)));
  }
}

TEST(DriftModel, FlashItemComesFromTheColdHalf) {
  ItemSpace items(32, kItems, 5);
  PopularityModel pop(kItems, 1.0, kLists, 7);
  DriftModel model(items, pop, Config(DriftKind::kFlashCrowd));

  for (int epoch = 1; epoch < model.config().max_epochs; epoch += 2) {
    const size_t flash = model.FlashItem(epoch);
    size_t rank = 0;
    for (size_t r = 1; r <= kItems; ++r) {
      if (pop.ItemAtRank(0, r) == flash) {
        rank = r;
        break;
      }
    }
    EXPECT_GT(rank, kItems / 2)
        << "flash item of epoch " << epoch << " is not cold";
  }
}

TEST(DriftModel, EpochOfClampsToMaxEpochs) {
  ItemSpace items(32, kItems, 5);
  PopularityModel pop(kItems, 1.0, kLists, 7);
  DriftConfig config = Config(DriftKind::kRankShuffle, /*period=*/10);
  config.max_epochs = 4;
  DriftModel model(items, pop, config);
  EXPECT_EQ(model.EpochOf(0), 0);
  EXPECT_EQ(model.EpochOf(9), 0);
  EXPECT_EQ(model.EpochOf(10), 1);
  EXPECT_EQ(model.EpochOf(39), 3);
  EXPECT_EQ(model.EpochOf(40), 3) << "later queries stay in the final epoch";
  EXPECT_EQ(model.EpochOf(100000), 3);
}

TEST(DriftKindTest, ParseRoundTripsAndRejectsGarbage) {
  for (DriftKind kind :
       {DriftKind::kNone, DriftKind::kRankShuffle, DriftKind::kFlashCrowd}) {
    DriftKind parsed;
    ASSERT_TRUE(ParseDriftKind(DriftKindName(kind), &parsed));
    EXPECT_EQ(parsed, kind);
  }
  DriftKind parsed;
  EXPECT_FALSE(ParseDriftKind("zipf-walk", &parsed));
  EXPECT_FALSE(ParseDriftKind("", &parsed));
}

TEST(DriftConfigTest, EnabledRequiresKindAndPeriod) {
  DriftConfig c;
  EXPECT_FALSE(c.enabled());
  c.kind = DriftKind::kRankShuffle;
  EXPECT_FALSE(c.enabled()) << "period 0 disables drift";
  c.period = 5;
  EXPECT_TRUE(c.enabled());
  c.kind = DriftKind::kNone;
  EXPECT_FALSE(c.enabled());
}

}  // namespace
}  // namespace peercache::workload
