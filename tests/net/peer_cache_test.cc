// Persistent peer-cache properties: a record survives close/reopen exactly,
// a torn write (partial record, flipped bytes) is rejected at Open instead
// of being served, and collisions evict deterministically.
#include "net/peer_cache.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "common/random.h"
#include "test_util.h"

namespace peercache::net {
namespace {

using proptest::Case;
using proptest::RunProperty;

std::string TempPath(const char* tag) {
  static int counter = 0;
  return ::testing::TempDir() + "peer_cache_" + tag + "_" +
         std::to_string(counter++) + ".bin";
}

PeerRecord MakeRecord(uint64_t id, size_t n_aux, size_t n_freq) {
  PeerRecord r;
  r.node_id = id;
  for (size_t i = 0; i < n_aux; ++i) {
    r.auxiliaries.push_back(MixHash64(id ^ i));
  }
  for (size_t i = 0; i < n_freq; ++i) {
    r.frequencies.emplace_back(MixHash64(id + i), i + 1);
  }
  return r;
}

TEST(PeerCacheTest, PutGetRoundTrips) {
  const std::string path = TempPath("roundtrip");
  auto cache = PeerCache::Create(path, PeerCacheConfig{});
  ASSERT_TRUE(cache.ok()) << cache.status();
  const PeerRecord rec = MakeRecord(42, 5, 10);
  ASSERT_TRUE(cache->Put(rec).ok());
  PeerRecord back;
  ASSERT_TRUE(cache->Get(42, back));
  EXPECT_EQ(back, rec);
  EXPECT_FALSE(cache->Get(43, back));
  std::remove(path.c_str());
}

TEST(PeerCacheTest, ReopenRecoversEveryRecord) {
  auto outcome = RunProperty(21, 30, [](Case& c) -> std::string {
    const std::string path = TempPath("reopen");
    PeerCacheConfig config;
    config.slot_count = static_cast<uint32_t>(c.Range("slots", 64, 256));
    config.aux_capacity = static_cast<uint32_t>(c.Range("aux_cap", 1, 16));
    config.freq_capacity = static_cast<uint32_t>(c.Range("freq_cap", 1, 32));
    config.salt = c.Range("salt", 0, ~uint64_t{0} - 1);
    const size_t n = c.Range("n", 1, 40);
    // Records still resident after all puts (collisions may have evicted
    // some); reopen must recover exactly this set.
    std::vector<PeerRecord> resident;
    size_t size_before = 0;
    {
      auto cache = PeerCache::Create(path, config);
      if (!cache.ok()) return "create failed: " + cache.status().ToString();
      std::vector<PeerRecord> put;
      for (size_t i = 0; i < n; ++i) {
        PeerRecord rec = MakeRecord(
            1000 + i * 7, c.Range("n_aux", 0, config.aux_capacity),
            c.Range("n_freq", 0, config.freq_capacity));
        if (!cache->Put(rec).ok()) return "put failed";
        put.push_back(std::move(rec));
      }
      if (!cache->Sync().ok()) return "sync failed";
      size_before = cache->size();
      for (PeerRecord& rec : put) {
        PeerRecord back;
        if (cache->Get(rec.node_id, back)) {
          if (!(back == rec)) return "record changed before reopen";
          resident.push_back(std::move(rec));
        }
      }
      if (resident.size() != size_before) return "index/size mismatch";
    }
    auto cache = PeerCache::Open(path);
    if (!cache.ok()) return "open failed: " + cache.status().ToString();
    if (cache->stats().rejected != 0) return "clean file reported torn records";
    if (cache->size() != size_before) {
      return "recovered " + std::to_string(cache->size()) + " of " +
             std::to_string(size_before) + " records";
    }
    for (const PeerRecord& rec : resident) {
      PeerRecord back;
      if (!cache->Get(rec.node_id, back)) return "record lost across reopen";
      if (!(back == rec)) return "record changed across reopen";
    }
    std::remove(path.c_str());
    return "";
  });
  EXPECT_TRUE(outcome.ok) << outcome.message << "\n  " << outcome.counterexample;
}

TEST(PeerCacheTest, TornWriteIsRejectedAtOpen) {
  const std::string path = TempPath("torn");
  PeerCacheConfig config;
  config.slot_count = 32;
  {
    auto cache = PeerCache::Create(path, config);
    ASSERT_TRUE(cache.ok());
    ASSERT_TRUE(cache->Put(MakeRecord(7, 3, 3)).ok());
    ASSERT_TRUE(cache->Sync().ok());
  }
  // Flip one byte in every slot's node-id field. The used slot's checksum
  // now fails (a torn write); empty slots stay state-0 and stay empty.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    const size_t record_size = 24 + 8 * config.aux_capacity +
                               16 * config.freq_capacity;
    for (uint32_t slot = 0; slot < config.slot_count; ++slot) {
      const std::streamoff off =
          static_cast<std::streamoff>(40 + slot * record_size + 6);
      f.seekg(off);
      char byte = 0;
      f.read(&byte, 1);
      byte = static_cast<char>(byte ^ 0x5a);
      f.seekp(off);
      f.write(&byte, 1);
    }
  }
  auto cache = PeerCache::Open(path);
  ASSERT_TRUE(cache.ok()) << cache.status();
  EXPECT_EQ(cache->stats().rejected, 1u);
  EXPECT_EQ(cache->size(), 0u);
  PeerRecord back;
  EXPECT_FALSE(cache->Get(7, back));
  std::remove(path.c_str());
}

TEST(PeerCacheTest, TruncatedFileIsRejected) {
  const std::string path = TempPath("short");
  {
    std::ofstream f(path, std::ios::binary);
    f << "PC";  // not even a full header
  }
  EXPECT_FALSE(PeerCache::Open(path).ok());
  std::remove(path.c_str());
}

TEST(PeerCacheTest, HeaderCorruptionIsRejected) {
  const std::string path = TempPath("header");
  {
    auto cache = PeerCache::Create(path, PeerCacheConfig{});
    ASSERT_TRUE(cache.ok());
  }
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(17);  // inside slot_count
    const char byte = 0x7f;
    f.write(&byte, 1);
  }
  EXPECT_FALSE(PeerCache::Open(path).ok());
  std::remove(path.c_str());
}

TEST(PeerCacheTest, ListsTruncateToFileCapacities) {
  const std::string path = TempPath("capacity");
  PeerCacheConfig config;
  config.aux_capacity = 4;
  config.freq_capacity = 3;
  auto cache = PeerCache::Create(path, config);
  ASSERT_TRUE(cache.ok());
  const PeerRecord rec = MakeRecord(9, 10, 10);
  ASSERT_TRUE(cache->Put(rec).ok());
  PeerRecord back;
  ASSERT_TRUE(cache->Get(9, back));
  ASSERT_EQ(back.auxiliaries.size(), 4u);
  ASSERT_EQ(back.frequencies.size(), 3u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(back.auxiliaries[i], rec.auxiliaries[i]);
  }
  std::remove(path.c_str());
}

TEST(PeerCacheTest, CollisionsEvictInsteadOfGrowing) {
  const std::string path = TempPath("evict");
  PeerCacheConfig config;
  config.slot_count = 8;  // window covers the whole file
  auto cache = PeerCache::Create(path, config);
  ASSERT_TRUE(cache.ok());
  for (uint64_t id = 1; id <= 20; ++id) {
    ASSERT_TRUE(cache->Put(MakeRecord(id, 2, 2)).ok());
  }
  EXPECT_EQ(cache->size(), 8u);
  EXPECT_EQ(cache->stats().evictions, 12u);
  // Survivors still round-trip.
  size_t found = 0;
  for (uint64_t id = 1; id <= 20; ++id) {
    PeerRecord back;
    if (cache->Get(id, back)) {
      ++found;
      EXPECT_EQ(back, MakeRecord(id, 2, 2));
    }
  }
  EXPECT_EQ(found, 8u);
  std::remove(path.c_str());
}

TEST(PeerCacheTest, OverwriteReplacesInPlace) {
  const std::string path = TempPath("overwrite");
  auto cache = PeerCache::Create(path, PeerCacheConfig{});
  ASSERT_TRUE(cache.ok());
  ASSERT_TRUE(cache->Put(MakeRecord(5, 2, 2)).ok());
  const PeerRecord updated = MakeRecord(5, 6, 6);
  ASSERT_TRUE(cache->Put(updated).ok());
  EXPECT_EQ(cache->size(), 1u);
  PeerRecord back;
  ASSERT_TRUE(cache->Get(5, back));
  EXPECT_EQ(back, updated);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace peercache::net
