// Wire-protocol properties: every message round-trips byte-exactly, and no
// corruption of a valid frame — truncation at any byte, any single bit
// flip, version/type/length tampering, trailing bytes — decodes
// successfully. Run under ASan/UBSan these properties also certify the
// decoder never reads out of bounds.
#include "net/wire.h"

#include <gtest/gtest.h>

#include <span>
#include <string>
#include <variant>
#include <vector>

#include "common/random.h"
#include "test_util.h"

namespace peercache::net {
namespace {

using proptest::Case;
using proptest::RunProperty;

AnyMessage DrawMessage(Case& c) {
  const uint64_t kind = c.Range("kind", 1, 6);
  switch (kind) {
    case 1: {
      LookupReq m;
      m.lookup_id = c.Range("lookup_id", 0, ~uint64_t{0});
      m.client = c.Range("client", 0, ~uint64_t{0});
      m.origin = c.Range("origin", 0, ~uint64_t{0});
      m.key = c.Range("key", 0, ~uint64_t{0});
      m.flags = static_cast<uint8_t>(c.Range("flags", 0, 1));
      return m;
    }
    case 2: {
      LookupStep m;
      m.lookup_id = c.Range("lookup_id", 0, ~uint64_t{0});
      m.client = c.Range("client", 0, ~uint64_t{0});
      m.origin = c.Range("origin", 0, ~uint64_t{0});
      m.flags = static_cast<uint8_t>(c.Range("flags", 0, 1));
      m.cursor.current = c.Range("current", 0, ~uint64_t{0});
      m.cursor.key = c.Range("ckey", 0, ~uint64_t{0});
      m.cursor.truth = c.Range("truth", 0, ~uint64_t{0});
      m.cursor.hops_taken = static_cast<uint32_t>(c.Range("hops_taken", 0, 300));
      m.cursor.spent = static_cast<uint32_t>(c.Range("spent", 0, 300));
      m.cursor.attempt = static_cast<uint32_t>(c.Range("attempt", 0, 300));
      m.cursor.flags = static_cast<uint8_t>(c.Range("cflags", 0, 3));
      m.route.flags = static_cast<uint8_t>(c.Range("rflags", 0, 3));
      m.route.hops = static_cast<uint32_t>(c.Range("rhops", 0, 300));
      m.route.latency_ms = c.Unit("latency") * 1e4;
      const uint64_t n_path = c.Range("n_path", 0, 8);
      for (uint64_t i = 0; i < n_path; ++i) {
        m.route.path.push_back(c.Range("path", 0, ~uint64_t{0}));
      }
      const uint64_t n_evict = c.Range("n_evict", 0, 4);
      for (uint64_t i = 0; i < n_evict; ++i) {
        m.route.dead_evictions.emplace_back(c.Range("holder", 0, ~uint64_t{0}),
                                            c.Range("entry", 0, ~uint64_t{0}));
      }
      const uint64_t n_hops = c.Range("n_hops", 0, 8);
      for (uint64_t i = 0; i < n_hops; ++i) {
        WireHop h;
        h.from = c.Range("from", 0, ~uint64_t{0});
        h.to = c.Range("to", 0, ~uint64_t{0});
        h.remaining = c.Range("remaining", 0, ~uint64_t{0});
        h.latency_ms = c.Unit("hop_latency") * 1e3;
        h.kind = static_cast<uint8_t>(c.Range("hkind", 0, 5));
        h.flags = static_cast<uint8_t>(c.Range("hflags", 0, 3));
        m.hops.push_back(h);
      }
      return m;
    }
    case 3: {
      LookupDone m;
      m.lookup_id = c.Range("lookup_id", 0, ~uint64_t{0});
      m.client = c.Range("client", 0, ~uint64_t{0});
      m.origin = c.Range("origin", 0, ~uint64_t{0});
      m.key = c.Range("key", 0, ~uint64_t{0});
      m.status = static_cast<uint8_t>(c.Range("status", 0, 3));
      m.flags = static_cast<uint8_t>(c.Range("flags", 0, 1));
      m.route.flags = static_cast<uint8_t>(c.Range("rflags", 0, 3));
      m.route.destination = c.Range("destination", 0, ~uint64_t{0});
      m.route.hops = static_cast<uint32_t>(c.Range("rhops", 0, 300));
      m.route.aux_hops = static_cast<uint32_t>(c.Range("aux_hops", 0, 300));
      m.route.retries = static_cast<uint32_t>(c.Range("retries", 0, 300));
      m.route.latency_ms = c.Unit("latency") * 1e4;
      const uint64_t n_path = c.Range("n_path", 0, 8);
      for (uint64_t i = 0; i < n_path; ++i) {
        m.route.path.push_back(c.Range("path", 0, ~uint64_t{0}));
      }
      return m;
    }
    case 4: {
      Join m;
      m.node_id = c.Range("node_id", 0, ~uint64_t{0});
      return m;
    }
    case 5: {
      Leave m;
      m.node_id = c.Range("node_id", 0, ~uint64_t{0});
      m.forget_state = static_cast<uint8_t>(c.Range("forget", 0, 1));
      return m;
    }
    default: {
      Stabilize m;
      m.node_id = c.Range("node_id", 0, ~uint64_t{0});
      return m;
    }
  }
}

TEST(WireTest, EncodeDecodeRoundTrips) {
  auto outcome = RunProperty(1, 400, [](Case& c) -> std::string {
    const AnyMessage msg = DrawMessage(c);
    const std::vector<uint8_t> frame = Encode(msg);
    auto decoded = Decode(std::span<const uint8_t>(frame));
    if (!decoded.ok()) return "decode failed: " + decoded.status().ToString();
    if (!(decoded.value() == msg)) return "round trip changed the message";
    return "";
  });
  EXPECT_TRUE(outcome.ok) << outcome.message << "\n  " << outcome.counterexample;
}

TEST(WireTest, TruncationAtEveryByteRejected) {
  auto outcome = RunProperty(2, 120, [](Case& c) -> std::string {
    const AnyMessage msg = DrawMessage(c);
    const std::vector<uint8_t> frame = Encode(msg);
    for (size_t len = 0; len < frame.size(); ++len) {
      auto decoded = Decode(std::span<const uint8_t>(frame.data(), len));
      if (decoded.ok()) {
        return "accepted a frame truncated to " + std::to_string(len) +
               " of " + std::to_string(frame.size()) + " bytes";
      }
    }
    return "";
  });
  EXPECT_TRUE(outcome.ok) << outcome.message << "\n  " << outcome.counterexample;
}

TEST(WireTest, SingleBitFlipRejected) {
  auto outcome = RunProperty(3, 150, [](Case& c) -> std::string {
    const AnyMessage msg = DrawMessage(c);
    std::vector<uint8_t> frame = Encode(msg);
    const uint64_t bit =
        c.Range("bit", 0, uint64_t{frame.size()} * 8 - 1);
    frame[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    auto decoded = Decode(std::span<const uint8_t>(frame));
    // The checksum covers type, length, and payload; flips in the magic or
    // version fields fail their own checks first. No flip may pass.
    if (decoded.ok()) {
      return "accepted a frame with bit " + std::to_string(bit) + " flipped";
    }
    return "";
  });
  EXPECT_TRUE(outcome.ok) << outcome.message << "\n  " << outcome.counterexample;
}

TEST(WireTest, TrailingBytesRejected) {
  LookupReq req;
  req.lookup_id = 7;
  std::vector<uint8_t> frame = Encode(req);
  frame.push_back(0);
  EXPECT_FALSE(Decode(std::span<const uint8_t>(frame)).ok());
}

TEST(WireTest, BadVersionRejected) {
  std::vector<uint8_t> frame = Encode(Join{42});
  frame[4] ^= 0x01;  // version low byte
  EXPECT_FALSE(Decode(std::span<const uint8_t>(frame)).ok());
  EXPECT_FALSE(PeekType(std::span<const uint8_t>(frame)).ok());
}

TEST(WireTest, UnknownTypeRejected) {
  // Hand-build a frame with type 99 and a correct checksum: the decoder
  // must reject on the type whitelist, not the checksum.
  std::vector<uint8_t> frame;
  ByteWriter w(frame);
  w.U32(kWireMagic);
  w.U16(kWireVersion);
  w.U16(99);
  w.U32(0);  // empty payload
  const uint32_t crc =
      Crc32(std::span<const uint8_t>(frame.data() + 4, 8));
  w.U32(crc);
  EXPECT_FALSE(Decode(std::span<const uint8_t>(frame)).ok());
}

TEST(WireTest, UnknownHopKindRejected) {
  LookupStep step;
  step.flags = LookupStep::kFlagTraced;
  WireHop hop;
  hop.kind = 200;  // beyond HopEntryKind::kBucket
  step.hops.push_back(hop);
  const std::vector<uint8_t> frame = Encode(step);
  EXPECT_FALSE(Decode(std::span<const uint8_t>(frame)).ok());
}

TEST(WireTest, PeekTypeMatchesDecode) {
  const std::vector<uint8_t> frame = Encode(Stabilize{kAllNodes});
  auto type = PeekType(std::span<const uint8_t>(frame));
  ASSERT_TRUE(type.ok());
  EXPECT_EQ(type.value(), MessageType::kStabilize);
}

TEST(WireTest, Crc32Chains) {
  const std::vector<uint8_t> a = {1, 2, 3, 4, 5};
  const std::vector<uint8_t> b = {6, 7, 8};
  std::vector<uint8_t> ab = a;
  ab.insert(ab.end(), b.begin(), b.end());
  EXPECT_EQ(Crc32(std::span<const uint8_t>(ab)),
            Crc32(std::span<const uint8_t>(b),
                  Crc32(std::span<const uint8_t>(a))));
}

TEST(WireTest, RouteStatePackUnpackIsExact) {
  overlay::RouteResult r;
  r.success = true;
  r.destination = 0xdeadbeefULL;
  r.hops = 7;
  r.aux_hops = 2;
  r.latency_ms = 123.4567891011;
  r.path = {1, 2, 3};
  r.retries = 4;
  r.dropped_forwards = 1;
  r.failstop_skips = 2;
  r.stale_forwards = 1;
  r.budget_exhausted = false;
  r.dead_evictions = {{9, 10}};
  overlay::RouteResult back;
  UnpackRouteState(PackRouteState(r), back);
  EXPECT_EQ(back.success, r.success);
  EXPECT_EQ(back.destination, r.destination);
  EXPECT_EQ(back.hops, r.hops);
  EXPECT_EQ(back.aux_hops, r.aux_hops);
  EXPECT_EQ(back.latency_ms, r.latency_ms);  // bit pattern travels
  EXPECT_EQ(back.path, r.path);
  EXPECT_EQ(back.retries, r.retries);
  EXPECT_EQ(back.dropped_forwards, r.dropped_forwards);
  EXPECT_EQ(back.failstop_skips, r.failstop_skips);
  EXPECT_EQ(back.stale_forwards, r.stale_forwards);
  EXPECT_EQ(back.budget_exhausted, r.budget_exhausted);
  EXPECT_EQ(back.dead_evictions, r.dead_evictions);
}

}  // namespace
}  // namespace peercache::net
