// Message-bus determinism: delivery order is a pure function of (seed,
// posted messages), certified by running the same traffic on thread pools
// of different sizes and comparing the serialized event log byte for byte.
#include "net/bus.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/thread_pool.h"
#include "test_util.h"

namespace peercache::net {
namespace {

using proptest::Case;
using proptest::RunProperty;

constexpr uint64_t kCollector = ~uint64_t{0};

std::vector<uint8_t> Payload(uint64_t a, uint64_t b) {
  std::vector<uint8_t> p(16);
  for (int i = 0; i < 8; ++i) {
    p[static_cast<size_t>(i)] = static_cast<uint8_t>(a >> (8 * i));
    p[static_cast<size_t>(8 + i)] = static_cast<uint8_t>(b >> (8 * i));
  }
  return p;
}

/// Runs a deterministic ping chain: each worker message (dst, hops-left h)
/// reports to the collector and, while h > 0, forwards to a hash-derived
/// next worker with a hash-derived delay. Returns the collector's event log
/// (serial: the collector is one mailbox) plus the bus counters.
std::string RunChain(int threads, uint64_t seed, int n_workers, int n_seeds,
                     int hops) {
  ThreadPool pool(threads);
  BusConfig config;
  config.seed = seed;
  config.tick_ms = 1.0;
  MessageBus bus(config, &pool);
  for (int i = 0; i < n_seeds; ++i) {
    bus.Post(kCollector, static_cast<uint64_t>(i % n_workers), 0.0,
             Payload(static_cast<uint64_t>(i), static_cast<uint64_t>(hops)));
  }
  std::string log;
  bus.Run([&](const Envelope& env, std::vector<Outbound>& out) {
    if (env.dst == kCollector) {
      log += std::to_string(env.tick) + ":" + std::to_string(env.src) + ":" +
             std::to_string(env.payload[0]) + ";";
      return;
    }
    uint64_t chain = 0, left = 0;
    for (int i = 0; i < 8; ++i) {
      chain |= static_cast<uint64_t>(env.payload[static_cast<size_t>(i)])
               << (8 * i);
      left |= static_cast<uint64_t>(env.payload[static_cast<size_t>(8 + i)])
              << (8 * i);
    }
    Outbound note;
    note.dst = kCollector;
    note.payload = Payload(chain, left);
    out.push_back(std::move(note));
    if (left > 0) {
      const uint64_t h = MixHash64(chain ^ (left << 8) ^ env.dst);
      Outbound next;
      next.dst = h % static_cast<uint64_t>(n_workers);
      next.delay_ms = static_cast<double>(h % 7);
      next.payload = Payload(chain, left - 1);
      out.push_back(std::move(next));
    }
  });
  log += "|delivered=" + std::to_string(bus.delivered()) +
         " last_tick=" + std::to_string(bus.last_tick());
  return log;
}

TEST(BusTest, DeliveryOrderIsThreadCountInvariant) {
  auto outcome = RunProperty(11, 25, [](Case& c) -> std::string {
    const uint64_t seed = c.Range("seed", 0, 1000);
    const int workers = static_cast<int>(c.Range("workers", 1, 40));
    const int seeds = static_cast<int>(c.Range("seeds", 1, 30));
    const int hops = static_cast<int>(c.Range("hops", 0, 12));
    const std::string serial = RunChain(1, seed, workers, seeds, hops);
    const std::string parallel = RunChain(4, seed, workers, seeds, hops);
    if (serial != parallel) {
      return "threads=1 log differs from threads=4 log:\n  " + serial +
             "\n  " + parallel;
    }
    return "";
  });
  EXPECT_TRUE(outcome.ok) << outcome.message << "\n  " << outcome.counterexample;
}

TEST(BusTest, MessagesNeverDeliverOnTheirSendTick) {
  ThreadPool pool(1);
  MessageBus bus(BusConfig{}, &pool);
  bus.Post(0, 1, 0.0, {1});
  uint64_t send_tick = 0, reply_tick = 0;
  bus.Run([&](const Envelope& env, std::vector<Outbound>& out) {
    if (env.dst == 1) {
      send_tick = env.tick;
      out.push_back({2, 0.0, {2}});
    } else {
      reply_tick = env.tick;
    }
  });
  EXPECT_GT(reply_tick, send_tick);
  EXPECT_EQ(bus.delivered(), 2u);
}

TEST(BusTest, DelayQuantizesToTicks) {
  ThreadPool pool(1);
  BusConfig config;
  config.tick_ms = 10.0;
  MessageBus bus(config, &pool);
  bus.Post(0, 1, 35.0, {1});  // ceil(35/10) = 4 ticks after tick 0
  uint64_t tick = 0;
  bus.Run([&](const Envelope& env, std::vector<Outbound>&) {
    tick = env.tick;
  });
  EXPECT_EQ(tick, 4u);
}

TEST(BusTest, MaxTicksStopsRunawayTraffic) {
  ThreadPool pool(1);
  BusConfig config;
  config.max_ticks = 50;
  MessageBus bus(config, &pool);
  bus.Post(0, 1, 0.0, {});
  bus.Run([&](const Envelope& env, std::vector<Outbound>& out) {
    out.push_back({env.dst, 0.0, {}});  // ping self forever
  });
  EXPECT_LE(bus.last_tick(), 50u);
  EXPECT_GT(bus.pending(), 0u);  // the runaway message is still queued
}

}  // namespace
}  // namespace peercache::net
