// Differential certification of the message-driven runtime: the same lookup
// issued as a chain of wire messages over the bus must reproduce the direct
// LookupInto call byte for byte — every RouteResult field (latency compared
// as a bit pattern), every trace hop, every resilience counter — on all
// three overlays, with and without fault plans and latency models, at
// thread pool sizes 1 and 4.
#include <gtest/gtest.h>

#include <cstring>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "chord/chord_network.h"
#include "common/fault.h"
#include "common/latency.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "kademlia/kademlia_network.h"
#include "net/actor_node.h"
#include "net/bus.h"
#include "net/wire.h"
#include "pastry/pastry_network.h"
#include "test_util.h"

namespace peercache::net {
namespace {

using proptest::Case;
using proptest::RunProperty;

bool BitEqual(double a, double b) {
  return std::memcmp(&a, &b, sizeof(a)) == 0;
}

std::string DiffResults(const overlay::RouteResult& direct,
                        const overlay::RouteResult& bus) {
  if (direct.success != bus.success) return "success differs";
  if (direct.destination != bus.destination) return "destination differs";
  if (direct.hops != bus.hops) return "hops differ";
  if (direct.aux_hops != bus.aux_hops) return "aux_hops differ";
  if (!BitEqual(direct.latency_ms, bus.latency_ms)) {
    return "latency bit patterns differ";
  }
  if (direct.path != bus.path) return "paths differ";
  if (direct.retries != bus.retries) return "retries differ";
  if (direct.dropped_forwards != bus.dropped_forwards) {
    return "dropped_forwards differ";
  }
  if (direct.failstop_skips != bus.failstop_skips) {
    return "failstop_skips differ";
  }
  if (direct.stale_forwards != bus.stale_forwards) {
    return "stale_forwards differ";
  }
  if (direct.budget_exhausted != bus.budget_exhausted) {
    return "budget_exhausted differs";
  }
  if (direct.dead_evictions != bus.dead_evictions) {
    return "dead_evictions differ";
  }
  return "";
}

std::string DiffTraces(const RouteTrace& direct, const RouteTrace& bus) {
  if (direct.origin != bus.origin || direct.key != bus.key) {
    return "trace header differs";
  }
  if (direct.destination != bus.destination) {
    return "trace destination differs";
  }
  if (direct.success != bus.success) return "trace success differs";
  if (direct.hops != bus.hops) return "trace hops differ";
  if (!BitEqual(direct.latency_ms, bus.latency_ms)) {
    return "trace latency differs";
  }
  if (direct.path.size() != bus.path.size()) {
    return "trace path length differs";
  }
  for (size_t i = 0; i < direct.path.size(); ++i) {
    const HopRecord& a = direct.path[i];
    const HopRecord& b = bus.path[i];
    if (a.from != b.from || a.to != b.to || a.kind != b.kind ||
        a.remaining != b.remaining || a.dropped != b.dropped ||
        a.retried != b.retried || !BitEqual(a.latency_ms, b.latency_ms)) {
      return "trace hop " + std::to_string(i) + " differs";
    }
  }
  return "";
}

/// Issues `lookups` over the bus against `net` and checks every DONE
/// against the direct LookupInto call. Returns "" when byte-identical.
template <typename Net>
std::string CheckDifferential(
    const Net& net, const std::vector<std::pair<uint64_t, uint64_t>>& lookups,
    const fault::FaultPlan* faults, const latency::LatencyModel* latency,
    bool traced, int threads) {
  typename ActorHost<Net>::Config config;
  config.traced = traced;
  config.faults = faults;
  config.latency = latency;
  ActorHost<Net> host(net, config);

  ThreadPool pool(threads);
  BusConfig bus_config;
  bus_config.seed = 99;
  MessageBus bus(bus_config, &pool);
  for (size_t i = 0; i < lookups.size(); ++i) {
    bus.Post(kClientAddress, lookups[i].first, 0.0,
             host.MakeLookupReq(i, lookups[i].first, lookups[i].second));
  }
  std::vector<LookupDone> dones(lookups.size());
  std::vector<bool> seen(lookups.size(), false);
  std::string bus_error;
  bus.Run([&](const Envelope& env, std::vector<Outbound>& out) {
    if (env.dst != kClientAddress) {
      host.HandleMessage(env, out);
      return;
    }
    auto decoded = Decode(std::span<const uint8_t>(env.payload));
    if (!decoded.ok() || !std::holds_alternative<LookupDone>(decoded.value())) {
      bus_error = "client received a non-DONE frame";
      return;
    }
    const LookupDone& done = std::get<LookupDone>(decoded.value());
    if (done.lookup_id >= dones.size() || seen[done.lookup_id]) {
      bus_error = "bad or duplicate lookup_id at the client";
      return;
    }
    dones[done.lookup_id] = done;
    seen[done.lookup_id] = true;
  });
  if (!bus_error.empty()) return bus_error;

  for (size_t i = 0; i < lookups.size(); ++i) {
    if (!seen[i]) return "lookup " + std::to_string(i) + " never completed";
    overlay::RouteResult direct;
    RouteTrace direct_trace;
    const Status direct_status = net.LookupInto(
        lookups[i].first, lookups[i].second, direct,
        traced ? &direct_trace : nullptr, faults, latency);
    overlay::RouteResult via_bus;
    RouteTrace bus_trace;
    const Status bus_status =
        UnpackDone(dones[i], via_bus, traced ? &bus_trace : nullptr);
    if (direct_status.code() != bus_status.code()) {
      return "status differs: direct=" + direct_status.ToString() +
             " bus=" + bus_status.ToString();
    }
    if (!direct_status.ok()) continue;
    if (std::string d = DiffResults(direct, via_bus); !d.empty()) {
      return "lookup " + std::to_string(i) + ": " + d;
    }
    if (traced) {
      if (std::string d = DiffTraces(direct_trace, bus_trace); !d.empty()) {
        return "lookup " + std::to_string(i) + ": " + d;
      }
    }
  }
  return "";
}

/// Builds an overlay with churn-induced staleness and auxiliary entries —
/// the state that exercises every routing branch.
template <typename Net, typename Params>
Net BuildNetwork(Case& c, Params params, std::vector<uint64_t>* live) {
  params.bits = 16;
  const uint64_t net_seed = c.Range("net_seed", 1, 1u << 20);
  // Pastry's constructor additionally takes a stabilization-probe seed.
  auto make = [&] {
    if constexpr (std::is_constructible_v<Net, const Params&, uint64_t>) {
      return Net(params, net_seed);
    } else {
      return Net(params);
    }
  };
  Net net = make();
  Rng rng(net_seed);
  const size_t n = c.Range("n", 8, 64);
  std::vector<uint64_t> ids = rng.SampleDistinct(uint64_t{1} << 16, n);
  EXPECT_TRUE(net.BulkAdd(ids).ok());
  net.StabilizeAll();
  // Install auxiliaries drawn from the membership on some nodes.
  for (uint64_t id : ids) {
    if (rng.Bernoulli(0.5)) {
      std::vector<uint64_t> aux;
      const size_t k = 1 + rng.UniformU64(4);
      for (size_t j = 0; j < k; ++j) {
        aux.push_back(ids[rng.UniformU64(ids.size())]);
      }
      EXPECT_TRUE(net.SetAuxiliaries(id, aux).ok());
    }
  }
  // Crash a fraction WITHOUT restabilizing: tables go stale, which is what
  // gives the fault plan's stale gate something to bite on.
  for (uint64_t id : ids) {
    if (net.live_count() > 4 && rng.Bernoulli(0.2)) {
      EXPECT_TRUE(net.RemoveNode(id).ok());
    } else {
      live->push_back(id);
    }
  }
  return net;
}

template <typename Net, typename Params>
std::string RunOverlayProperty(Case& c, Params params) {
  std::vector<uint64_t> live;
  const Net net = BuildNetwork<Net, Params>(c, params, &live);
  Rng rng(c.Range("workload_seed", 1, 1u << 20));
  std::vector<std::pair<uint64_t, uint64_t>> lookups;
  const size_t n_lookups = c.Range("n_lookups", 1, 12);
  for (size_t i = 0; i < n_lookups; ++i) {
    lookups.emplace_back(live[rng.UniformU64(live.size())],
                         rng.UniformU64(uint64_t{1} << 16));
  }

  const bool faulted = c.Bool("faulted");
  fault::FaultConfig fault_config;
  fault_config.drop_prob = faulted ? 0.15 : 0.0;
  fault_config.fail_prob = faulted ? 0.05 : 0.0;
  fault_config.stale_prob = faulted ? 0.5 : 0.0;
  fault_config.seed = c.Range("fault_seed", 1, 1000);
  fault_config.max_retries = 4;
  const fault::FaultPlan faults(fault_config);

  const bool timed = c.Bool("timed");
  latency::LatencyConfig latency_config;
  latency_config.base_rtt_ms = timed ? 12.0 : 0.0;
  latency_config.coord_scale_ms = timed ? 40.0 : 0.0;
  latency_config.jitter_ms = timed ? 3.0 : 0.0;
  latency_config.timeout_ms = timed ? 50.0 : 0.0;
  latency_config.seed = c.Range("latency_seed", 1, 1000);
  const latency::LatencyModel latency(latency_config);

  const bool traced = c.Bool("traced");
  for (int threads : {1, 4}) {
    std::string diff = CheckDifferential(
        net, lookups, faulted ? &faults : nullptr, timed ? &latency : nullptr,
        traced, threads);
    if (!diff.empty()) {
      return "threads=" + std::to_string(threads) + ": " + diff;
    }
  }
  return "";
}

TEST(ActorDifferentialTest, ChordMessagePathEqualsDirectPath) {
  auto outcome = RunProperty(31, 40, [](Case& c) {
    return RunOverlayProperty<chord::ChordNetwork>(c, chord::ChordParams{});
  });
  EXPECT_TRUE(outcome.ok) << outcome.message << "\n  " << outcome.counterexample;
}

TEST(ActorDifferentialTest, PastryMessagePathEqualsDirectPath) {
  auto outcome = RunProperty(32, 40, [](Case& c) {
    return RunOverlayProperty<pastry::PastryNetwork>(c, pastry::PastryParams{});
  });
  EXPECT_TRUE(outcome.ok) << outcome.message << "\n  " << outcome.counterexample;
}

TEST(ActorDifferentialTest, KademliaMessagePathEqualsDirectPath) {
  auto outcome = RunProperty(33, 40, [](Case& c) {
    return RunOverlayProperty<kademlia::KademliaNetwork>(
        c, kademlia::KademliaParams{});
  });
  EXPECT_TRUE(outcome.ok) << outcome.message << "\n  " << outcome.counterexample;
}

TEST(ActorDifferentialTest, LookupAtDeadOriginReportsUnavailable) {
  chord::ChordParams params;
  params.bits = 16;
  chord::ChordNetwork net(params);
  ASSERT_TRUE(net.BulkAdd({100, 200, 300}).ok());
  net.StabilizeAll();
  ASSERT_TRUE(net.RemoveNode(200).ok());
  std::string diff =
      CheckDifferential(net, {{200, 5000}}, nullptr, nullptr, false, 1);
  EXPECT_EQ(diff, "") << diff;
}

TEST(ActorDifferentialTest, ControlPlaneDrivesChurn) {
  chord::ChordParams params;
  params.bits = 16;
  chord::ChordNetwork net(params);
  using Host = ActorHost<chord::ChordNetwork>;
  ASSERT_TRUE(Host::ApplyControl(net, Join{100}).ok());
  ASSERT_TRUE(Host::ApplyControl(net, Join{200}).ok());
  ASSERT_TRUE(Host::ApplyControl(net, Join{300}).ok());
  ASSERT_TRUE(Host::ApplyControl(net, Stabilize{kAllNodes}).ok());
  EXPECT_EQ(net.live_count(), 3u);
  ASSERT_TRUE(Host::ApplyControl(net, Leave{200, 0}).ok());
  EXPECT_FALSE(net.IsAlive(200));
  ASSERT_TRUE(Host::ApplyControl(net, Join{200}).ok());  // rejoin
  EXPECT_TRUE(net.IsAlive(200));
  ASSERT_TRUE(Host::ApplyControl(net, Stabilize{200}).ok());
}

}  // namespace
}  // namespace peercache::net
