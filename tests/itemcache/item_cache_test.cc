#include "itemcache/item_cache.h"

#include <gtest/gtest.h>

#include "itemcache/strategy_compare.h"

namespace peercache::itemcache {
namespace {

TEST(ItemCache, MissThenHit) {
  ItemCache cache(4, 10.0);
  EXPECT_FALSE(cache.Lookup(1, 0.0).hit);
  cache.Store(1, 7, 0.0);
  auto probe = cache.Lookup(1, 5.0);
  EXPECT_TRUE(probe.hit);
  EXPECT_EQ(probe.version, 7u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(ItemCache, TtlExpires) {
  ItemCache cache(4, 10.0);
  cache.Store(1, 7, 0.0);
  EXPECT_TRUE(cache.Lookup(1, 9.99).hit);
  EXPECT_FALSE(cache.Lookup(1, 10.0).hit) << "expired exactly at TTL";
  EXPECT_EQ(cache.size(), 0u) << "expired entry evicted on probe";
}

TEST(ItemCache, CapacityEvictsClosestToExpiry) {
  ItemCache cache(2, 10.0);
  cache.Store(1, 0, 0.0);  // expires at 10
  cache.Store(2, 0, 5.0);  // expires at 15
  cache.Store(3, 0, 6.0);  // evicts key 1
  EXPECT_FALSE(cache.Lookup(1, 6.0).hit);
  EXPECT_TRUE(cache.Lookup(2, 6.0).hit);
  EXPECT_TRUE(cache.Lookup(3, 6.0).hit);
}

TEST(ItemCache, StoreExistingKeyRefreshes) {
  ItemCache cache(1, 10.0);
  cache.Store(1, 0, 0.0);
  cache.Store(1, 3, 8.0);  // same key: no eviction needed
  auto probe = cache.Lookup(1, 17.0);
  EXPECT_TRUE(probe.hit);
  EXPECT_EQ(probe.version, 3u);
}

TEST(ItemCache, InvalidateAndClear) {
  ItemCache cache(0, 10.0);  // unbounded
  cache.Store(1, 0, 0.0);
  cache.Store(2, 0, 0.0);
  cache.Invalidate(1);
  EXPECT_FALSE(cache.Lookup(1, 1.0).hit);
  EXPECT_TRUE(cache.Lookup(2, 1.0).hit);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
}

TEST(AuthoritativeItems, VersionsAdvance) {
  AuthoritativeItems items(3);
  EXPECT_EQ(items.Version(0), 0u);
  items.Update(0);
  items.Update(0);
  items.Update(2);
  EXPECT_EQ(items.Version(0), 2u);
  EXPECT_EQ(items.Version(1), 0u);
  EXPECT_EQ(items.Version(2), 1u);
  EXPECT_EQ(items.total_updates(), 3u);
}

TEST(StrategyCompare, PeerCachingWinsUnderFastUpdates) {
  StrategyCompareConfig cfg;
  cfg.n_nodes = 128;
  cfg.n_items = 512;
  cfg.duration_s = 400;
  cfg.item_update_period_s = 30;  // items churn fast
  auto cmp = CompareStrategies(cfg);
  ASSERT_TRUE(cmp.ok()) << cmp.status();
  // Peer caching beats plain routing and never serves stale answers.
  EXPECT_LT(cmp->peer_cache.avg_hops, cmp->baseline.avg_hops);
  EXPECT_DOUBLE_EQ(cmp->peer_cache.stale_fraction, 0.0);
  EXPECT_DOUBLE_EQ(cmp->peer_cache.update_messages, 0.0);
  // Item caching serves a meaningful fraction of stale answers here.
  EXPECT_GT(cmp->item_cache.stale_fraction, 0.05);
  // Replication pays update traffic; peer caching pays none.
  EXPECT_GT(cmp->replication.update_messages, 0.0);
}

TEST(StrategyCompare, ReplicationShortensHotLookups) {
  StrategyCompareConfig cfg;
  cfg.n_nodes = 128;
  cfg.n_items = 512;
  cfg.duration_s = 400;
  auto cmp = CompareStrategies(cfg);
  ASSERT_TRUE(cmp.ok());
  EXPECT_LT(cmp->replication.avg_hops, cmp->baseline.avg_hops);
}

}  // namespace
}  // namespace peercache::itemcache
