// Focused tests for the Pastry leaf-set machinery: side separation, the R1
// coverage-arc delivery rule, and behaviour in sparse rings where leaf arcs
// wrap far around the id space.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/random.h"
#include "pastry/pastry_network.h"

namespace peercache::pastry {
namespace {

TEST(PastryLeafSet, SidesAreRingNeighborsInOrder) {
  PastryParams params;
  params.bits = 8;
  params.leaf_set_half = 2;
  PastryNetwork net(params, 1);
  for (uint64_t id : {10u, 50u, 90u, 130u, 170u, 210u}) {
    ASSERT_TRUE(net.AddNode(id).ok());
  }
  net.StabilizeAll();
  const PastryNode* node = net.GetNode(90);
  ASSERT_NE(node, nullptr);
  const auto succ = net.LeafSucc(*node);
  const auto pred = net.LeafPred(*node);
  EXPECT_EQ(std::vector<uint64_t>(succ.begin(), succ.end()),
            (std::vector<uint64_t>{130, 170}));
  EXPECT_EQ(std::vector<uint64_t>(pred.begin(), pred.end()),
            (std::vector<uint64_t>{50, 10}));
  // Union view contains both sides exactly once.
  std::set<uint64_t> all(succ.begin(), succ.end());
  all.insert(pred.begin(), pred.end());
  EXPECT_EQ(all, (std::set<uint64_t>{10, 50, 130, 170}));
}

TEST(PastryLeafSet, WrapsAroundZero) {
  PastryParams params;
  params.bits = 8;
  params.leaf_set_half = 2;
  PastryNetwork net(params, 1);
  for (uint64_t id : {5u, 100u, 250u}) {
    ASSERT_TRUE(net.AddNode(id).ok());
  }
  net.StabilizeAll();
  const PastryNode* node = net.GetNode(250);
  ASSERT_NE(node, nullptr);
  const auto succ = net.LeafSucc(*node);
  EXPECT_EQ(std::vector<uint64_t>(succ.begin(), succ.end()),
            (std::vector<uint64_t>{5, 100}));
  // The pred side stops once the sides meet (only 2 other nodes exist).
  EXPECT_TRUE(net.LeafPred(*node).empty());
}

TEST(PastryLeafSet, SmallRingEveryoneKnowsEveryone) {
  PastryParams params;
  params.bits = 16;
  params.leaf_set_half = 8;
  PastryNetwork net(params, 2);
  Rng rng(12);
  auto ids = rng.SampleDistinct(uint64_t{1} << 16, 6);
  for (uint64_t id : ids) ASSERT_TRUE(net.AddNode(id).ok());
  net.StabilizeAll();
  for (uint64_t id : ids) {
    const PastryNode* node = net.GetNode(id);
    const auto succ = net.LeafSucc(*node);
    const auto pred = net.LeafPred(*node);
    std::set<uint64_t> known(succ.begin(), succ.end());
    known.insert(pred.begin(), pred.end());
    EXPECT_EQ(known.size(), ids.size() - 1)
        << "node " << id << " must know all 5 others via its leaf set";
  }
  // With complete knowledge every lookup is exact, and short: keys inside
  // the leaf span deliver in one hop; keys in the arc just behind the
  // origin (outside its successor-side span) may take one extra hop.
  for (int t = 0; t < 200; ++t) {
    uint64_t key = rng.UniformU64(uint64_t{1} << 16);
    uint64_t origin = ids[static_cast<size_t>(rng.UniformU64(ids.size()))];
    auto route = net.Lookup(origin, key);
    ASSERT_TRUE(route.ok());
    EXPECT_TRUE(route->success);
    EXPECT_LE(route->hops, 2);
  }
}

TEST(PastryLeafSet, SparseRingsDeliverExactly) {
  // The regression behind the sticky numeric mode + side-separated spans:
  // very sparse rings (few nodes, wide id space) must still deliver every
  // lookup at the numerically closest node.
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    PastryParams params;
    params.bits = 20;
    PastryNetwork net(params, seed);
    Rng rng(seed * 131);
    auto ids = rng.SampleDistinct(uint64_t{1} << 20, 12);
    for (uint64_t id : ids) ASSERT_TRUE(net.AddNode(id).ok());
    net.StabilizeAll();
    for (int t = 0; t < 200; ++t) {
      uint64_t key = rng.UniformU64(uint64_t{1} << 20);
      uint64_t origin = ids[static_cast<size_t>(rng.UniformU64(ids.size()))];
      auto route = net.Lookup(origin, key);
      ASSERT_TRUE(route.ok());
      EXPECT_TRUE(route->success)
          << "seed " << seed << " key " << key << " from " << origin;
    }
  }
}

TEST(PastryLeafSet, StabilizeAfterChurnRebuildsSides) {
  PastryParams params;
  params.bits = 8;
  params.leaf_set_half = 2;
  PastryNetwork net(params, 1);
  for (uint64_t id : {10u, 50u, 90u, 130u, 170u, 210u}) {
    ASSERT_TRUE(net.AddNode(id).ok());
  }
  net.StabilizeAll();
  ASSERT_TRUE(net.RemoveNode(130).ok());
  ASSERT_TRUE(net.StabilizeNode(90).ok());
  const PastryNode* node = net.GetNode(90);
  const auto succ = net.LeafSucc(*node);
  EXPECT_EQ(std::vector<uint64_t>(succ.begin(), succ.end()),
            (std::vector<uint64_t>{170, 210}));
}

}  // namespace
}  // namespace peercache::pastry
