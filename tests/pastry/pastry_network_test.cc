#include "pastry/pastry_network.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/bits.h"
#include "common/random.h"

namespace peercache::pastry {
namespace {

PastryNetwork MakeNetwork(int bits, const std::vector<uint64_t>& ids,
                          uint64_t seed = 11) {
  PastryParams params;
  params.bits = bits;
  PastryNetwork net(params, seed);
  for (uint64_t id : ids) {
    EXPECT_TRUE(net.AddNode(id).ok());
  }
  net.StabilizeAll();
  return net;
}

TEST(PastryNetwork, AddRemoveRejoin) {
  PastryParams params;
  params.bits = 8;
  PastryNetwork net(params, 1);
  ASSERT_TRUE(net.AddNode(10).ok());
  ASSERT_TRUE(net.AddNode(200).ok());
  EXPECT_FALSE(net.AddNode(10).ok());
  EXPECT_FALSE(net.AddNode(999).ok());
  ASSERT_TRUE(net.RemoveNode(10).ok());
  EXPECT_FALSE(net.IsAlive(10));
  ASSERT_TRUE(net.RejoinNode(10).ok());
  EXPECT_TRUE(net.IsAlive(10));
}

TEST(PastryNetwork, ResponsibleNodeIsNumericallyClosest) {
  PastryNetwork net = MakeNetwork(8, {10, 100, 200});
  EXPECT_EQ(net.ResponsibleNode(10).value(), 10u);
  EXPECT_EQ(net.ResponsibleNode(54).value(), 10u);
  EXPECT_EQ(net.ResponsibleNode(56).value(), 100u);
  EXPECT_EQ(net.ResponsibleNode(220).value(), 200u);
  // 240 wraps: ring distance to 10 is 26, to 200 is 40 -> 10.
  EXPECT_EQ(net.ResponsibleNode(240).value(), 10u);
  EXPECT_EQ(net.ResponsibleNode(255).value(), 10u);
  // Exact midpoint 55: distances 45/45, lower id wins.
  EXPECT_EQ(net.ResponsibleNode(55).value(), 10u);
}

TEST(PastryNetwork, RoutingRowsShareExactPrefix) {
  Rng rng(9);
  auto ids = rng.SampleDistinct(uint64_t{1} << 12, 40);
  PastryNetwork net = MakeNetwork(12, ids);
  for (uint64_t id : ids) {
    const PastryNode* node = net.GetNode(id);
    const auto rows = net.RoutingRows(*node);
    for (int row = 0; row < 12; ++row) {
      uint64_t w = rows[static_cast<size_t>(row)];
      if (w == PastryNetwork::kNoEntry) continue;
      EXPECT_EQ(CommonPrefixLength(id, w, 12), row)
          << "row " << row << " of node " << id;
    }
  }
}

TEST(PastryNetwork, RowEntriesAreProximityClosest) {
  Rng rng(10);
  auto ids = rng.SampleDistinct(uint64_t{1} << 12, 60);
  PastryNetwork net = MakeNetwork(12, ids);
  // Re-derive the proximity-optimal entry for a few nodes/rows.
  for (size_t i = 0; i < 5; ++i) {
    uint64_t id = ids[i];
    const PastryNode* node = net.GetNode(id);
    const auto rows = net.RoutingRows(*node);
    for (int row = 0; row < 12; ++row) {
      uint64_t entry = rows[static_cast<size_t>(row)];
      double entry_dist = 0;
      if (entry != PastryNetwork::kNoEntry) {
        const Coord& a = node->coord;
        const Coord& b = net.GetNode(entry)->coord;
        entry_dist = (a.x - b.x) * (a.x - b.x) + (a.y - b.y) * (a.y - b.y);
      }
      for (uint64_t w : ids) {
        if (w == id || CommonPrefixLength(id, w, 12) != row) continue;
        ASSERT_NE(entry, PastryNetwork::kNoEntry)
            << "row " << row << " should not be empty";
        const Coord& a = node->coord;
        const Coord& b = net.GetNode(w)->coord;
        double d = (a.x - b.x) * (a.x - b.x) + (a.y - b.y) * (a.y - b.y);
        EXPECT_GE(d + 1e-12, entry_dist) << "closer candidate missed";
      }
    }
  }
}

TEST(PastryNetwork, LookupAlwaysSucceedsWhenStable) {
  Rng rng(123);
  auto ids = rng.SampleDistinct(uint64_t{1} << 16, 100);
  PastryNetwork net = MakeNetwork(16, ids);
  for (int t = 0; t < 500; ++t) {
    uint64_t key = rng.UniformU64(uint64_t{1} << 16);
    uint64_t origin = ids[static_cast<size_t>(rng.UniformU64(ids.size()))];
    auto route = net.Lookup(origin, key);
    ASSERT_TRUE(route.ok());
    EXPECT_TRUE(route->success) << "key " << key << " from " << origin;
    EXPECT_EQ(route->destination, net.ResponsibleNode(key).value());
  }
}

TEST(PastryNetwork, PrefixGrowsAlongRoute) {
  // The hop count is bounded by roughly one hop per fixed bit plus the
  // final leaf-set step.
  Rng rng(321);
  auto ids = rng.SampleDistinct(uint64_t{1} << 24, 200);
  PastryNetwork net = MakeNetwork(24, ids);
  for (int t = 0; t < 300; ++t) {
    uint64_t key = rng.UniformU64(uint64_t{1} << 24);
    uint64_t origin = ids[static_cast<size_t>(rng.UniformU64(ids.size()))];
    auto route = net.Lookup(origin, key);
    ASSERT_TRUE(route.ok());
    EXPECT_LE(route->hops, 26);
  }
}

TEST(PastryNetwork, AuxiliaryPointerShortensRoute) {
  Rng rng(456);
  auto ids = rng.SampleDistinct(uint64_t{1} << 16, 128);
  PastryNetwork net = MakeNetwork(16, ids);
  const uint64_t origin = ids[0];
  // Find a multi-hop destination, install it as auxiliary, re-route.
  for (uint64_t target : ids) {
    if (target == origin) continue;
    auto before = net.Lookup(origin, target);
    ASSERT_TRUE(before.ok());
    if (before->hops < 3) continue;
    ASSERT_TRUE(net.SetAuxiliaries(origin, {target}).ok());
    auto after = net.Lookup(origin, target);
    ASSERT_TRUE(after.ok());
    EXPECT_TRUE(after->success);
    EXPECT_EQ(after->hops, 1) << "direct pointer must make it one hop";
    return;
  }
  FAIL() << "no multi-hop destination found";
}

TEST(PastryNetwork, DeadEntriesSkippedAfterCrash) {
  Rng rng(789);
  auto ids = rng.SampleDistinct(uint64_t{1} << 16, 60);
  PastryNetwork net = MakeNetwork(16, ids);
  // Crash some nodes without stabilizing survivors; lookups between
  // survivors must still terminate and deliver somewhere sensible.
  for (size_t i = 0; i < ids.size(); i += 4) {
    ASSERT_TRUE(net.RemoveNode(ids[i]).ok());
  }
  int delivered = 0;
  for (int t = 0; t < 200; ++t) {
    uint64_t key = rng.UniformU64(uint64_t{1} << 16);
    uint64_t origin;
    do {
      origin = ids[static_cast<size_t>(rng.UniformU64(ids.size()))];
    } while (!net.IsAlive(origin));
    auto route = net.Lookup(origin, key);
    ASSERT_TRUE(route.ok());
    EXPECT_TRUE(net.IsAlive(route->destination));
    delivered += route->success;
  }
  // Stale tables may misdeliver occasionally, but most should still land.
  EXPECT_GT(delivered, 150);
  // After stabilization everything recovers.
  net.StabilizeAll();
  for (int t = 0; t < 200; ++t) {
    uint64_t key = rng.UniformU64(uint64_t{1} << 16);
    uint64_t origin;
    do {
      origin = ids[static_cast<size_t>(rng.UniformU64(ids.size()))];
    } while (!net.IsAlive(origin));
    EXPECT_TRUE(net.Lookup(origin, key)->success);
  }
}

TEST(PastryNetwork, TinyOverlays) {
  PastryNetwork net = MakeNetwork(8, {42});
  auto route = net.Lookup(42, 7);
  ASSERT_TRUE(route.ok());
  EXPECT_TRUE(route->success);
  EXPECT_EQ(route->hops, 0);
  EXPECT_EQ(route->destination, 42u);

  PastryNetwork net2 = MakeNetwork(8, {42, 100});
  auto route2 = net2.Lookup(42, 101);
  ASSERT_TRUE(route2.ok());
  EXPECT_TRUE(route2->success);
  EXPECT_EQ(route2->destination, 100u);
}

TEST(PastryNetwork, CoreNeighborIdsIncludeRowsAndLeafSet) {
  Rng rng(31);
  auto ids = rng.SampleDistinct(uint64_t{1} << 16, 50);
  PastryNetwork net = MakeNetwork(16, ids);
  auto cores = net.CoreNeighborIds(ids[0]);
  const PastryNode* node = net.GetNode(ids[0]);
  for (uint64_t w : net.LeafSucc(*node)) {
    EXPECT_TRUE(std::find(cores.begin(), cores.end(), w) != cores.end());
  }
  for (uint64_t w : net.LeafPred(*node)) {
    EXPECT_TRUE(std::find(cores.begin(), cores.end(), w) != cores.end());
  }
  for (uint64_t w : net.RoutingRows(*node)) {
    if (w == PastryNetwork::kNoEntry) continue;
    EXPECT_TRUE(std::find(cores.begin(), cores.end(), w) != cores.end());
  }
  std::set<uint64_t> dedup(cores.begin(), cores.end());
  EXPECT_EQ(dedup.size(), cores.size());
}

}  // namespace
}  // namespace peercache::pastry
