#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace peercache::sim {
namespace {

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.ScheduleAt(3.0, [&] { order.push_back(3); });
  q.ScheduleAt(1.0, [&] { order.push_back(1); });
  q.ScheduleAt(2.0, [&] { order.push_back(2); });
  while (q.RunNext()) {
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 3.0);
}

TEST(EventQueue, EqualTimesFireFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.ScheduleAt(5.0, [&order, i] { order.push_back(i); });
  }
  while (q.RunNext()) {
  }
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventQueue, ScheduleAfterUsesCurrentTime) {
  EventQueue q;
  double fired_at = -1;
  q.ScheduleAt(10.0, [&] {
    q.ScheduleAfter(5.0, [&] { fired_at = q.now(); });
  });
  while (q.RunNext()) {
  }
  EXPECT_DOUBLE_EQ(fired_at, 15.0);
}

TEST(EventQueue, RunUntilStopsAtBoundary) {
  EventQueue q;
  int count = 0;
  q.ScheduleAt(1.0, [&] { ++count; });
  q.ScheduleAt(2.0, [&] { ++count; });
  q.ScheduleAt(3.0, [&] { ++count; });
  q.RunUntil(2.0);
  EXPECT_EQ(count, 2);
  EXPECT_DOUBLE_EQ(q.now(), 2.0);
  EXPECT_EQ(q.pending(), 1u);
  q.RunUntil(10.0);
  EXPECT_EQ(count, 3);
  EXPECT_DOUBLE_EQ(q.now(), 10.0) << "clock advances to t_end";
}

TEST(EventQueue, EventsCanScheduleEvents) {
  EventQueue q;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 100) q.ScheduleAfter(1.0, chain);
  };
  q.ScheduleAt(0.0, chain);
  q.RunUntil(1000.0);
  EXPECT_EQ(depth, 100);
}

TEST(EventQueue, ClearDropsPending) {
  EventQueue q;
  int count = 0;
  q.ScheduleAt(1.0, [&] { ++count; });
  q.Clear();
  EXPECT_EQ(q.pending(), 0u);
  q.RunUntil(5.0);
  EXPECT_EQ(count, 0);
}

TEST(EventQueue, RunNextOnEmptyReturnsFalse) {
  EventQueue q;
  EXPECT_FALSE(q.RunNext());
}

}  // namespace
}  // namespace peercache::sim
