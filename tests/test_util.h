#ifndef PEERCACHE_TESTS_TEST_UTIL_H_
#define PEERCACHE_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "auxsel/selection_types.h"
#include "common/random.h"

namespace peercache::auxsel::testing {

/// Generates a random selection instance: distinct ids for self, peers, and
/// cores; frequencies uniform in [0, 100); cores drawn from peers with
/// probability 1/2 each, otherwise fresh ids.
inline SelectionInput RandomInput(Rng& rng, int bits, int n_peers, int n_cores,
                                  int k) {
  SelectionInput input;
  input.bits = bits;
  input.k = k;
  const uint64_t bound = (bits == 64) ? ~uint64_t{0} : (uint64_t{1} << bits);
  // Small id spaces cannot host arbitrarily many distinct ids; shrink the
  // instance rather than exhausting the space.
  while (static_cast<uint64_t>(n_peers + n_cores) + 1 > bound) {
    if (n_peers > 0) {
      --n_peers;
    } else {
      --n_cores;
    }
  }
  auto ids =
      rng.SampleDistinct(bound, static_cast<size_t>(n_peers + n_cores) + 1);
  input.self_id = ids[0];
  for (int i = 0; i < n_peers; ++i) {
    input.peers.push_back(
        PeerFreq{ids[static_cast<size_t>(1 + i)],
                 static_cast<double>(rng.UniformU64(10000)) / 100.0, -1});
  }
  for (int i = 0; i < n_cores; ++i) {
    if (n_peers > 0 && rng.Bernoulli(0.5)) {
      // Core that the node has also seen queries for.
      input.core_ids.push_back(
          input.peers[static_cast<size_t>(rng.UniformU64(
                          static_cast<uint64_t>(n_peers)))]
              .id);
    } else {
      input.core_ids.push_back(ids[static_cast<size_t>(1 + n_peers + i)]);
    }
  }
  return input;
}

/// Candidate ids: peers that are not core neighbors.
inline std::vector<uint64_t> Candidates(const SelectionInput& input) {
  std::vector<uint64_t> cands;
  for (const PeerFreq& p : input.peers) {
    if (std::find(input.core_ids.begin(), input.core_ids.end(), p.id) ==
        input.core_ids.end()) {
      cands.push_back(p.id);
    }
  }
  return cands;
}

/// Exhaustive optimum over all candidate subsets of size <= k, using the
/// given Eq. 1 evaluator. Exponential; for small instances only.
template <typename EvalFn>
double BruteForceBestCost(const SelectionInput& input, EvalFn eval) {
  std::vector<uint64_t> cands = Candidates(input);
  const size_t n = cands.size();
  double best = eval(input, {});
  // Enumerate subsets by bitmask; keep only those with popcount <= k.
  for (uint64_t mask = 1; mask < (uint64_t{1} << n); ++mask) {
    if (__builtin_popcountll(mask) > input.k) continue;
    std::vector<uint64_t> subset;
    for (size_t i = 0; i < n; ++i) {
      if (mask & (uint64_t{1} << i)) subset.push_back(cands[i]);
    }
    best = std::min(best, eval(input, subset));
  }
  return best;
}

/// Exhaustive QoS optimum: minimum cost over subsets of size <= k that
/// satisfy every delay bound; +inf when none does.
template <typename EvalFn, typename QosFn>
double BruteForceBestQosCost(const SelectionInput& input, EvalFn eval,
                             QosFn qos_ok) {
  std::vector<uint64_t> cands = Candidates(input);
  const size_t n = cands.size();
  double best = std::numeric_limits<double>::infinity();
  for (uint64_t mask = 0; mask < (uint64_t{1} << n); ++mask) {
    if (__builtin_popcountll(mask) > input.k) continue;
    std::vector<uint64_t> subset;
    for (size_t i = 0; i < n; ++i) {
      if (mask & (uint64_t{1} << i)) subset.push_back(cands[i]);
    }
    if (!qos_ok(input, subset)) continue;
    best = std::min(best, eval(input, subset));
  }
  return best;
}

}  // namespace peercache::auxsel::testing

#endif  // PEERCACHE_TESTS_TEST_UTIL_H_
