#ifndef PEERCACHE_TESTS_TEST_UTIL_H_
#define PEERCACHE_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "auxsel/selection_types.h"
#include "common/random.h"

namespace peercache::auxsel::testing {

/// Generates a random selection instance: distinct ids for self, peers, and
/// cores; frequencies uniform in [0, 100); cores drawn from peers with
/// probability 1/2 each, otherwise fresh ids.
inline SelectionInput RandomInput(Rng& rng, int bits, int n_peers, int n_cores,
                                  int k) {
  SelectionInput input;
  input.bits = bits;
  input.k = k;
  const uint64_t bound = (bits == 64) ? ~uint64_t{0} : (uint64_t{1} << bits);
  // Small id spaces cannot host arbitrarily many distinct ids; shrink the
  // instance rather than exhausting the space.
  while (static_cast<uint64_t>(n_peers + n_cores) + 1 > bound) {
    if (n_peers > 0) {
      --n_peers;
    } else {
      --n_cores;
    }
  }
  auto ids =
      rng.SampleDistinct(bound, static_cast<size_t>(n_peers + n_cores) + 1);
  input.self_id = ids[0];
  for (int i = 0; i < n_peers; ++i) {
    input.peers.push_back(
        PeerFreq{ids[static_cast<size_t>(1 + i)],
                 static_cast<double>(rng.UniformU64(10000)) / 100.0, -1});
  }
  for (int i = 0; i < n_cores; ++i) {
    if (n_peers > 0 && rng.Bernoulli(0.5)) {
      // Core that the node has also seen queries for.
      input.core_ids.push_back(
          input.peers[static_cast<size_t>(rng.UniformU64(
                          static_cast<uint64_t>(n_peers)))]
              .id);
    } else {
      input.core_ids.push_back(ids[static_cast<size_t>(1 + n_peers + i)]);
    }
  }
  return input;
}

/// Candidate ids: peers that are not core neighbors.
inline std::vector<uint64_t> Candidates(const SelectionInput& input) {
  std::vector<uint64_t> cands;
  for (const PeerFreq& p : input.peers) {
    if (std::find(input.core_ids.begin(), input.core_ids.end(), p.id) ==
        input.core_ids.end()) {
      cands.push_back(p.id);
    }
  }
  return cands;
}

/// Exhaustive optimum over all candidate subsets of size <= k, using the
/// given Eq. 1 evaluator. Exponential; for small instances only.
template <typename EvalFn>
double BruteForceBestCost(const SelectionInput& input, EvalFn eval) {
  std::vector<uint64_t> cands = Candidates(input);
  const size_t n = cands.size();
  double best = eval(input, {});
  // Enumerate subsets by bitmask; keep only those with popcount <= k.
  for (uint64_t mask = 1; mask < (uint64_t{1} << n); ++mask) {
    if (__builtin_popcountll(mask) > input.k) continue;
    std::vector<uint64_t> subset;
    for (size_t i = 0; i < n; ++i) {
      if (mask & (uint64_t{1} << i)) subset.push_back(cands[i]);
    }
    best = std::min(best, eval(input, subset));
  }
  return best;
}

/// Exhaustive QoS optimum: minimum cost over subsets of size <= k that
/// satisfy every delay bound; +inf when none does.
template <typename EvalFn, typename QosFn>
double BruteForceBestQosCost(const SelectionInput& input, EvalFn eval,
                             QosFn qos_ok) {
  std::vector<uint64_t> cands = Candidates(input);
  const size_t n = cands.size();
  double best = std::numeric_limits<double>::infinity();
  for (uint64_t mask = 0; mask < (uint64_t{1} << n); ++mask) {
    if (__builtin_popcountll(mask) > input.k) continue;
    std::vector<uint64_t> subset;
    for (size_t i = 0; i < n; ++i) {
      if (mask & (uint64_t{1} << i)) subset.push_back(cands[i]);
    }
    if (!qos_ok(input, subset)) continue;
    best = std::min(best, eval(input, subset));
  }
  return best;
}

}  // namespace peercache::auxsel::testing

/// Minimal property-based testing harness: named draws recorded onto a tape
/// of integers, replayed (possibly mutated) during shrinking. A property is
/// a callable `std::string(Case&)` returning "" on success and a failure
/// description otherwise. On the first failing case, RunProperty greedily
/// binary-shrinks every tape position toward zero — each draw's zero is its
/// range minimum, so the reported counterexample is positionally minimal —
/// and reports the shrunk case's labeled draws. Everything is seeded and
/// deterministic: a failure reproduces bit-for-bit from (seed, case index).
namespace peercache::proptest {

class Case {
 public:
  /// Generation mode: draws come from `rng` and are recorded.
  explicit Case(Rng* rng) : rng_(rng) {}
  /// Replay mode: draws come from `tape` (clamped into range; exhausted
  /// positions read as zero).
  explicit Case(std::vector<uint64_t> tape) : tape_(std::move(tape)) {}

  /// Uniform integer in [lo, hi] (inclusive). Shrinks toward `lo`.
  uint64_t Range(const char* label, uint64_t lo, uint64_t hi) {
    const uint64_t span = hi - lo;  // callers pass lo <= hi
    const uint64_t offset = Draw(span);
    Note(label, lo + offset);
    return lo + offset;
  }

  /// Uniform double in [0, 1). Shrinks toward 0.
  double Unit(const char* label) {
    const uint64_t v = Draw((uint64_t{1} << 53) - 1);
    const double u = static_cast<double>(v) * 0x1.0p-53;
    Note(label, v);
    return u;
  }

  bool Bool(const char* label) { return Range(label, 0, 1) == 1; }

  /// The raw recorded (or replayed) draws, for the shrinker.
  const std::vector<uint64_t>& tape() const { return tape_; }

  /// "label=value label=value ..." for the failure report.
  std::string Describe() const {
    std::string out;
    for (const auto& [label, value] : notes_) {
      if (!out.empty()) out += ' ';
      out += label;
      out += '=';
      out += std::to_string(value);
    }
    return out;
  }

 private:
  uint64_t Draw(uint64_t span) {
    if (rng_ != nullptr) {
      const uint64_t v =
          span == std::numeric_limits<uint64_t>::max()
              ? rng_->UniformU64(std::numeric_limits<uint64_t>::max())
              : rng_->UniformU64(span + 1);
      tape_.push_back(v);
      return v;
    }
    const uint64_t raw = pos_ < tape_.size() ? tape_[pos_] : 0;
    ++pos_;
    return std::min(raw, span);
  }

  void Note(const char* label, uint64_t value) {
    notes_.emplace_back(label, value);
  }

  Rng* rng_ = nullptr;
  std::vector<uint64_t> tape_;
  size_t pos_ = 0;
  std::vector<std::pair<const char*, uint64_t>> notes_;
};

struct PropertyOutcome {
  bool ok = true;
  size_t failing_case = 0;     ///< Index of the first failing case.
  std::string message;         ///< Property's failure description (shrunk).
  std::string counterexample;  ///< Labeled draws of the shrunk case.
};

/// Runs `cases` generated cases of `prop` (a callable `std::string(Case&)`;
/// empty string = pass). Case i draws from Rng(SplitSeed(seed, i)), so the
/// whole run is a pure function of (seed, cases). On failure the tape is
/// shrunk with per-position greedy binary search (bounded by `shrink_budget`
/// extra property evaluations) before reporting.
template <typename PropFn>
PropertyOutcome RunProperty(uint64_t seed, int cases, const PropFn& prop,
                            int shrink_budget = 500) {
  for (int i = 0; i < cases; ++i) {
    Rng rng(SplitSeed(seed, static_cast<uint64_t>(i)));
    Case c(&rng);
    std::string message = prop(c);
    if (message.empty()) continue;

    // Shrink: for each tape position, binary-search the smallest value
    // that still fails, restarting until a full pass changes nothing.
    std::vector<uint64_t> tape = c.tape();
    auto fails = [&](const std::vector<uint64_t>& t, std::string* msg) {
      Case replay(t);
      std::string m = prop(replay);
      if (m.empty()) return false;
      *msg = std::move(m);
      return true;
    };
    bool improved = true;
    while (improved && shrink_budget > 0) {
      improved = false;
      for (size_t p = 0; p < tape.size() && shrink_budget > 0; ++p) {
        uint64_t lo = 0, hi = tape[p];  // invariant: `hi` fails
        while (lo < hi && shrink_budget > 0) {
          const uint64_t mid = lo + (hi - lo) / 2;
          std::vector<uint64_t> trial = tape;
          trial[p] = mid;
          std::string msg;
          --shrink_budget;
          if (fails(trial, &msg)) {
            hi = mid;
            message = std::move(msg);
          } else {
            lo = mid + 1;
          }
        }
        if (hi < tape[p]) {
          tape[p] = hi;
          improved = true;
        }
      }
    }

    PropertyOutcome out;
    out.ok = false;
    out.failing_case = static_cast<size_t>(i);
    Case shrunk(tape);
    out.message = prop(shrunk);
    if (out.message.empty()) out.message = message;  // replay hiccup guard
    out.counterexample = shrunk.Describe();
    return out;
  }
  return PropertyOutcome{};
}

}  // namespace peercache::proptest

#endif  // PEERCACHE_TESTS_TEST_UTIL_H_
