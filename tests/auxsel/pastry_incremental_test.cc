#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_map>

#include "auxsel/pastry_greedy.h"
#include "auxsel/pastry_maintainer.h"
#include "auxsel/selection_types.h"
#include "common/random.h"
#include "maintainer_test_util.h"
#include "test_util.h"

namespace peercache::auxsel {
namespace {

using ::peercache::auxsel::testing::RandomInput;
using ::peercache::auxsel::testing::ReplayDeltasAgainstFresh;

/// Reference: rebuild a fresh gain tree from the current logical state and
/// compare selections by cost.
double FreshCost(const SelectionInput& state) {
  auto sel = SelectPastryGreedy(state);
  EXPECT_TRUE(sel.ok()) << sel.status();
  return sel->cost;
}

TEST(PastryIncremental, AddPeersMatchesFreshBuild) {
  Rng rng(1001);
  const int bits = 16;
  const int k = 5;
  PastryGainTree tree(bits, k);
  SelectionInput state;
  state.bits = bits;
  state.k = k;
  state.self_id = 12345;

  auto ids = rng.SampleDistinct(uint64_t{1} << bits, 41);
  for (size_t i = 0; i < 40; ++i) {
    uint64_t id = ids[i];
    if (id == state.self_id) continue;
    double f = static_cast<double>(rng.UniformU64(1000));
    ASSERT_TRUE(tree.AddPeer(id, f).ok());
    state.peers.push_back(PeerFreq{id, f, -1});

    auto inc_sel = tree.SelectAuxiliary();
    double inc_cost = EvaluatePastryCost(state, inc_sel);
    EXPECT_NEAR(inc_cost, FreshCost(state), 1e-9 * (1 + inc_cost))
        << "after insert #" << i;
  }
}

TEST(PastryIncremental, MixedMutationStreamMatchesFreshBuild) {
  Rng rng(2002);
  const int bits = 12;
  const int k = 4;
  PastryGainTree tree(bits, k);
  SelectionInput state;
  state.bits = bits;
  state.k = k;
  state.self_id = 99;

  std::unordered_map<uint64_t, size_t> pos;  // id -> index in state.peers
  for (int step = 0; step < 300; ++step) {
    const int op = static_cast<int>(rng.UniformU64(4));
    if (op == 0 || state.peers.size() < 3) {
      // Insert a fresh id.
      uint64_t id = rng.UniformU64(uint64_t{1} << bits);
      if (id == state.self_id || pos.count(id)) continue;
      double f = static_cast<double>(rng.UniformU64(500));
      ASSERT_TRUE(tree.AddPeer(id, f).ok());
      pos[id] = state.peers.size();
      state.peers.push_back(PeerFreq{id, f, -1});
    } else if (op == 1) {
      // Remove a random peer.
      size_t i = static_cast<size_t>(rng.UniformU64(state.peers.size()));
      uint64_t id = state.peers[i].id;
      ASSERT_TRUE(tree.RemovePeer(id).ok());
      pos.erase(id);
      state.peers[i] = state.peers.back();
      state.peers.pop_back();
      if (i < state.peers.size()) pos[state.peers[i].id] = i;
      // Keep core list consistent: drop removed cores.
      state.core_ids.erase(
          std::remove(state.core_ids.begin(), state.core_ids.end(), id),
          state.core_ids.end());
    } else if (op == 2) {
      // Re-weight (popularity change, paper Sec. IV-C).
      size_t i = static_cast<size_t>(rng.UniformU64(state.peers.size()));
      double f = static_cast<double>(rng.UniformU64(500));
      ASSERT_TRUE(tree.UpdateFrequency(state.peers[i].id, f).ok());
      state.peers[i].frequency = f;
    } else {
      // Toggle core status.
      size_t i = static_cast<size_t>(rng.UniformU64(state.peers.size()));
      uint64_t id = state.peers[i].id;
      bool is_core = std::find(state.core_ids.begin(), state.core_ids.end(),
                               id) != state.core_ids.end();
      ASSERT_TRUE(tree.SetCore(id, !is_core).ok());
      if (is_core) {
        state.core_ids.erase(
            std::remove(state.core_ids.begin(), state.core_ids.end(), id),
            state.core_ids.end());
      } else {
        state.core_ids.push_back(id);
      }
    }

    if (step % 10 == 0) {
      auto inc_sel = tree.SelectAuxiliary();
      double inc_cost = EvaluatePastryCost(state, inc_sel);
      EXPECT_NEAR(inc_cost, FreshCost(state), 1e-9 * (1 + inc_cost))
          << "after step " << step;
      ASSERT_TRUE(tree.trie().CheckInvariants().ok());
    }
  }
  // Final deep consistency: every cached gain list equals a full recompute.
  EXPECT_TRUE(tree.CheckConsistency().ok());
}

TEST(PastryIncremental, RemoveToEmptyAndRebuild) {
  PastryGainTree tree(8, 2);
  ASSERT_TRUE(tree.AddPeer(1, 5.0).ok());
  ASSERT_TRUE(tree.AddPeer(2, 6.0).ok());
  ASSERT_TRUE(tree.RemovePeer(1).ok());
  ASSERT_TRUE(tree.RemovePeer(2).ok());
  EXPECT_TRUE(tree.SelectAuxiliary().empty());
  ASSERT_TRUE(tree.AddPeer(3, 1.0).ok());
  auto sel = tree.SelectAuxiliary();
  ASSERT_EQ(sel.size(), 1u);
  EXPECT_EQ(sel[0], 3u);
}

TEST(PastryIncremental, ErrorsOnBadMutations) {
  PastryGainTree tree(8, 2);
  ASSERT_TRUE(tree.AddPeer(1, 5.0).ok());
  EXPECT_EQ(tree.AddPeer(1, 2.0).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(tree.RemovePeer(9).code(), StatusCode::kNotFound);
  EXPECT_EQ(tree.UpdateFrequency(9, 1.0).code(), StatusCode::kNotFound);
  EXPECT_EQ(tree.AddPeer(300, 1.0).code(), StatusCode::kInvalidArgument)
      << "id out of range for 8-bit space";
}

TEST(PastryMaintainer, RandomDeltaStreamMatchesFreshSelect) {
  Rng rng(0xab01);
  PastryAuxMaintainer m(/*bits=*/12, /*k=*/4, /*self_id=*/99);
  ReplayDeltasAgainstFresh(m, SelectPastryGreedy, EvaluatePastryCost, rng,
                           /*steps=*/250);
}

TEST(PastryMaintainer, SecondSeedAndLargerBudget) {
  Rng rng(0xab02);
  PastryAuxMaintainer m(/*bits=*/16, /*k=*/8, /*self_id=*/0x4321);
  ReplayDeltasAgainstFresh(m, SelectPastryGreedy, EvaluatePastryCost, rng,
                           /*steps=*/200);
}

TEST(PastryMaintainer, IncrementalCostPricingMatchesEq1) {
  // The maintainer prices Cost(N ∪ A) as BaseCost − TotalGain via the trie
  // prefix-sum walk; pin it against the reference evaluator on a handmade
  // instance where the numbers are easy to audit.
  PastryAuxMaintainer m(/*bits=*/8, /*k=*/1, /*self_id=*/0);
  ASSERT_TRUE(m.OnPeerJoin(0b10000000, 10.0).ok());
  ASSERT_TRUE(m.OnPeerJoin(0b10000001, 5.0).ok());
  ASSERT_TRUE(m.SetCores({0b01000000}).ok());
  auto sel = m.Reselect();
  ASSERT_TRUE(sel.ok());
  EXPECT_NEAR(sel->cost, EvaluatePastryCost(m.FreshInput(), sel->chosen),
              1e-12);
}

TEST(PastryMaintainer, DepartedCoreStaysUntilSetCoresDropsIt) {
  PastryAuxMaintainer m(/*bits=*/8, /*k=*/2, /*self_id=*/0);
  ASSERT_TRUE(m.SetCores({64, 128}).ok());
  ASSERT_TRUE(m.OnPeerJoin(10, 5.0).ok());
  ASSERT_TRUE(m.OnPeerJoin(64, 3.0).ok());
  ASSERT_TRUE(m.OnPeerLeave(64).ok());
  SelectionInput state = m.FreshInput();
  EXPECT_EQ(state.core_ids, (std::vector<uint64_t>{64, 128}));
  ASSERT_EQ(state.peers.size(), 1u);  // 64 keeps its leaf but carries no f
  EXPECT_EQ(m.tracked_peers(), 3u);

  auto changed = m.SetCores({128});
  ASSERT_TRUE(changed.ok());
  EXPECT_EQ(changed.value(), 1u);
  EXPECT_EQ(m.tracked_peers(), 2u);  // zero-frequency ex-core dropped
  auto inc = m.Reselect();
  ASSERT_TRUE(inc.ok());
  auto ref = SelectPastryGreedy(m.FreshInput());
  ASSERT_TRUE(ref.ok());
  EXPECT_NEAR(inc->cost, ref->cost, 1e-12);
}

TEST(PastryMaintainer, EmptyStateSelectsNothing) {
  PastryAuxMaintainer m(/*bits=*/8, /*k=*/3, /*self_id=*/7);
  auto sel = m.Reselect();
  ASSERT_TRUE(sel.ok()) << sel.status();
  EXPECT_TRUE(sel->chosen.empty());
  EXPECT_EQ(sel->cost, 0.0);
  EXPECT_EQ(m.total_frequency(), 0.0);
}

TEST(PastryMaintainer, NoDeltasReturnsCachedSelection) {
  Rng rng(0xab03);
  SelectionInput input =
      RandomInput(rng, /*bits=*/10, /*n_peers=*/25, /*n_cores=*/4, /*k=*/3);
  PastryAuxMaintainer m(input.bits, input.k, input.self_id);
  ASSERT_TRUE(m.SetCores(input.core_ids).ok());
  for (const PeerFreq& p : input.peers) {
    if (p.frequency > 0.0) {
      ASSERT_TRUE(m.OnPeerJoin(p.id, p.frequency).ok());
    }
  }
  auto first = m.Reselect();
  ASSERT_TRUE(first.ok());
  // Idempotent deltas must leave the cached selection untouched.
  for (const PeerFreq& p : input.peers) {
    if (p.frequency > 0.0) {
      ASSERT_TRUE(m.OnFrequencyDelta(p.id, p.frequency).ok());
    }
  }
  auto second = m.Reselect();
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->chosen, second->chosen);
  EXPECT_EQ(first->cost, second->cost);
}

TEST(PastryIncremental, PreselectedExcludedFromCandidates) {
  PastryGainTree tree(8, 3);
  ASSERT_TRUE(tree.AddPeer(0b10000000, 50.0).ok());
  ASSERT_TRUE(tree.AddPeer(0b01000000, 10.0).ok());
  ASSERT_TRUE(tree.SetPreselected(0b10000000, true).ok());
  auto sel = tree.SelectAuxiliary();
  ASSERT_EQ(sel.size(), 1u);
  EXPECT_EQ(sel[0], 0b01000000u);
}

}  // namespace
}  // namespace peercache::auxsel
