#include "auxsel/chord_common.h"

#include <gtest/gtest.h>

#include "common/bits.h"
#include "common/random.h"
#include "test_util.h"

namespace peercache::auxsel {
namespace {

using ::peercache::auxsel::testing::RandomInput;

TEST(ChordInstance, EmptyInput) {
  SelectionInput input;
  input.bits = 8;
  input.self_id = 3;
  auto inst = BuildChordInstance(input);
  ASSERT_TRUE(inst.ok());
  EXPECT_EQ(inst->n, 0);
  EXPECT_TRUE(inst->candidates.empty());
}

TEST(ChordInstance, HopMatchesIdSpaceEstimate) {
  SelectionInput input;
  input.bits = 8;
  input.self_id = 100;
  input.peers = {{110, 1.0, -1}, {200, 2.0, -1}, {50, 3.0, -1}};
  auto inst_r = BuildChordInstance(input);
  ASSERT_TRUE(inst_r.ok());
  const ChordInstance& inst = inst_r.value();
  // Shifted: 110 -> 10, 200 -> 100, 50 -> 206.
  EXPECT_EQ(inst.Hop(0, 1), BitLength(10));
  EXPECT_EQ(inst.Hop(1, 2), BitLength(90));
  EXPECT_EQ(inst.Hop(1, 1), 0);
  EXPECT_EQ(inst.Hop(2, 3), BitLength(106));
}

TEST(ChordInstance, PrefixSumsConsistent) {
  Rng rng(606);
  for (int trial = 0; trial < 30; ++trial) {
    SelectionInput input = RandomInput(rng, 16, 40, 5, 4);
    auto inst_r = BuildChordInstance(input);
    ASSERT_TRUE(inst_r.ok());
    const ChordInstance& inst = inst_r.value();
    // F is the prefix sum of freq; B is the prefix sum of core-served cost.
    double f = 0, b = 0;
    for (int l = 1; l <= inst.n; ++l) {
      f += inst.freq[static_cast<size_t>(l)];
      b += inst.freq[static_cast<size_t>(l)] *
           inst.core_serve[static_cast<size_t>(l)];
      EXPECT_NEAR(inst.F[static_cast<size_t>(l)], f, 1e-9);
      EXPECT_NEAR(inst.B[static_cast<size_t>(l)], b, 1e-9);
    }
    // ids strictly ascending; next_core consistent with is_core.
    for (int l = 2; l <= inst.n; ++l) {
      EXPECT_GT(inst.ids[static_cast<size_t>(l)],
                inst.ids[static_cast<size_t>(l - 1)]);
    }
    for (int j = 0; j <= inst.n; ++j) {
      int nc = inst.next_core[static_cast<size_t>(j)];
      for (int l = j + 1; l < nc && l <= inst.n; ++l) {
        EXPECT_FALSE(inst.is_core[static_cast<size_t>(l)]);
      }
      if (nc <= inst.n) EXPECT_TRUE(inst.is_core[static_cast<size_t>(nc)]);
    }
  }
}

TEST(ChordInstance, CoreServeIsBestCoreAtOrBefore) {
  Rng rng(707);
  for (int trial = 0; trial < 20; ++trial) {
    SelectionInput input = RandomInput(rng, 12, 30, 6, 0);
    auto inst_r = BuildChordInstance(input);
    ASSERT_TRUE(inst_r.ok());
    const ChordInstance& inst = inst_r.value();
    for (int l = 1; l <= inst.n; ++l) {
      int best = inst.bits;
      for (int c = 1; c <= l; ++c) {
        if (inst.is_core[static_cast<size_t>(c)]) {
          best = std::min(best, inst.Hop(c, l));
        }
      }
      EXPECT_EQ(inst.core_serve[static_cast<size_t>(l)], best) << "l=" << l;
    }
  }
}

TEST(ChordInstance, SlowSAdditiveOverRanges) {
  // s(j, m) accumulates per-successor costs, so s(j, m+1) - s(j, m) is the
  // served cost of successor m+1.
  Rng rng(808);
  SelectionInput input = RandomInput(rng, 16, 25, 4, 0);
  auto inst_r = BuildChordInstance(input);
  ASSERT_TRUE(inst_r.ok());
  const ChordInstance& inst = inst_r.value();
  for (int j : inst.candidates) {
    for (int m = j; m < inst.n; ++m) {
      const double delta = inst.SlowS(j, m + 1) - inst.SlowS(j, m);
      const int nc = inst.next_core[static_cast<size_t>(j)];
      const int d = (m + 1 < nc) ? inst.Hop(j, m + 1)
                                 : inst.core_serve[static_cast<size_t>(m + 1)];
      EXPECT_NEAR(delta, inst.freq[static_cast<size_t>(m + 1)] * d, 1e-9);
    }
  }
}

TEST(ChordInstance, MergesDuplicateCorePeer) {
  SelectionInput input;
  input.bits = 8;
  input.self_id = 0;
  input.peers = {{10, 5.0, -1}};
  input.core_ids = {10};  // same node is both observed and core
  auto inst_r = BuildChordInstance(input);
  ASSERT_TRUE(inst_r.ok());
  EXPECT_EQ(inst_r->n, 1);
  EXPECT_TRUE(inst_r->is_core[1]);
  EXPECT_DOUBLE_EQ(inst_r->freq[1], 5.0);  // frequency retained
  EXPECT_TRUE(inst_r->candidates.empty());
}

}  // namespace
}  // namespace peercache::auxsel
