#include <gtest/gtest.h>

#include <cmath>

#include "auxsel/chord_qos.h"
#include "auxsel/pastry_dp.h"
#include "auxsel/pastry_qos.h"
#include "auxsel/selection_types.h"
#include "common/random.h"
#include "test_util.h"

namespace peercache::auxsel {
namespace {

using ::peercache::auxsel::testing::BruteForceBestQosCost;
using ::peercache::auxsel::testing::RandomInput;

/// Sprinkles random delay bounds over a random instance.
SelectionInput WithRandomBounds(Rng& rng, int bits, int n, int cores, int k,
                                double bound_prob) {
  SelectionInput input = RandomInput(rng, bits, n, cores, k);
  for (PeerFreq& p : input.peers) {
    if (rng.Bernoulli(bound_prob)) {
      p.delay_bound = static_cast<int>(rng.UniformU64(
          static_cast<uint64_t>(bits) + 1));
    }
  }
  return input;
}

TEST(PastryQos, DpMatchesBruteForce) {
  Rng rng(333111);
  int infeasible_seen = 0;
  for (int trial = 0; trial < 80; ++trial) {
    const int bits = 4 + static_cast<int>(rng.UniformU64(6));
    const int n = 1 + static_cast<int>(rng.UniformU64(9));
    SelectionInput input = WithRandomBounds(
        rng, bits, n, static_cast<int>(rng.UniformU64(3)),
        static_cast<int>(rng.UniformU64(4)), 0.4);
    double brute =
        BruteForceBestQosCost(input, EvaluatePastryCost, PastryQosSatisfied);
    auto sel = SelectPastryDpQos(input);
    if (std::isinf(brute)) {
      ++infeasible_seen;
      EXPECT_EQ(sel.status().code(), StatusCode::kInfeasible)
          << "trial=" << trial;
    } else {
      ASSERT_TRUE(sel.ok()) << sel.status() << " trial=" << trial;
      EXPECT_NEAR(sel->cost, brute, 1e-9 * (1 + brute)) << "trial=" << trial;
      EXPECT_TRUE(PastryQosSatisfied(input, sel->chosen));
    }
  }
  // The sweep must exercise both feasible and infeasible instances.
  EXPECT_GT(infeasible_seen, 0);
  EXPECT_LT(infeasible_seen, 80);
}

TEST(PastryQos, GreedyMatchesDp) {
  Rng rng(555);
  for (int trial = 0; trial < 120; ++trial) {
    const int bits = 4 + static_cast<int>(rng.UniformU64(12));
    const int n = 1 + static_cast<int>(rng.UniformU64(25));
    SelectionInput input = WithRandomBounds(
        rng, bits, n, static_cast<int>(rng.UniformU64(4)),
        static_cast<int>(rng.UniformU64(6)), 0.3);
    auto dp = SelectPastryDpQos(input);
    auto greedy = SelectPastryGreedyQos(input);
    if (!dp.ok()) {
      EXPECT_EQ(greedy.status().code(), StatusCode::kInfeasible)
          << "trial=" << trial << ": dp=" << dp.status()
          << " greedy=" << greedy.status();
      continue;
    }
    ASSERT_TRUE(greedy.ok()) << greedy.status() << " trial=" << trial;
    EXPECT_NEAR(greedy->cost, dp->cost, 1e-9 * (1 + dp->cost))
        << "trial=" << trial << " n=" << n;
    EXPECT_TRUE(PastryQosSatisfied(input, greedy->chosen));
  }
}

TEST(PastryQos, UnconstrainedInstanceMatchesPlainSelector) {
  Rng rng(7777);
  for (int trial = 0; trial < 20; ++trial) {
    SelectionInput input = RandomInput(rng, 12, 20, 3, 4);
    auto plain = SelectPastryDp(input);
    auto qos = SelectPastryDpQos(input);
    auto greedy_qos = SelectPastryGreedyQos(input);
    ASSERT_TRUE(plain.ok());
    ASSERT_TRUE(qos.ok());
    ASSERT_TRUE(greedy_qos.ok());
    EXPECT_NEAR(qos->cost, plain->cost, 1e-9);
    EXPECT_NEAR(greedy_qos->cost, plain->cost, 1e-9);
  }
}

TEST(PastryQos, ForcedPointerSatisfiesTightBound) {
  SelectionInput input;
  input.bits = 8;
  input.self_id = 0;
  // A cold peer with a tight bound must be covered even though a hot peer
  // competes for the single pointer.
  input.peers = {{0b11110000, 0.1, 1}, {0b00000011, 100.0, -1}};
  input.k = 1;
  auto sel = SelectPastryGreedyQos(input);
  ASSERT_TRUE(sel.ok()) << sel.status();
  ASSERT_EQ(sel->chosen.size(), 1u);
  EXPECT_EQ(sel->chosen[0], 0b11110000u);

  // With k = 2 both are picked.
  input.k = 2;
  sel = SelectPastryGreedyQos(input);
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(sel->chosen.size(), 2u);
}

TEST(PastryQos, InfeasibleWhenBudgetTooSmall) {
  SelectionInput input;
  input.bits = 8;
  // Two constrained peers in opposite halves of the id space, bound 0 means
  // each must itself be a neighbor; k = 1 cannot cover both.
  input.self_id = 1;
  input.peers = {{0b10000000, 1.0, 0}, {0b01000000, 1.0, 0}};
  input.k = 1;
  EXPECT_EQ(SelectPastryGreedyQos(input).status().code(),
            StatusCode::kInfeasible);
  EXPECT_EQ(SelectPastryDpQos(input).status().code(), StatusCode::kInfeasible);
}

TEST(PastryQos, CoreNeighborSatisfiesBoundWithoutSpendingBudget) {
  SelectionInput input;
  input.bits = 8;
  input.self_id = 0;
  input.peers = {{0b10000001, 1.0, 2}, {0b00100000, 50.0, -1}};
  input.core_ids = {0b10000010};  // lcp with constrained peer = 6, d = 2
  input.k = 1;
  auto sel = SelectPastryGreedyQos(input);
  ASSERT_TRUE(sel.ok());
  ASSERT_EQ(sel->chosen.size(), 1u);
  EXPECT_EQ(sel->chosen[0], 0b00100000u) << "budget should go to the hot peer";
}

TEST(ChordQos, DpMatchesBruteForce) {
  Rng rng(121212);
  int infeasible_seen = 0;
  for (int trial = 0; trial < 80; ++trial) {
    const int bits = 4 + static_cast<int>(rng.UniformU64(6));
    const int n = 1 + static_cast<int>(rng.UniformU64(9));
    SelectionInput input = WithRandomBounds(
        rng, bits, n, static_cast<int>(rng.UniformU64(3)),
        static_cast<int>(rng.UniformU64(4)), 0.4);
    double brute =
        BruteForceBestQosCost(input, EvaluateChordCost, ChordQosSatisfied);
    auto sel = SelectChordDpQos(input);
    if (std::isinf(brute)) {
      ++infeasible_seen;
      EXPECT_EQ(sel.status().code(), StatusCode::kInfeasible)
          << "trial=" << trial;
    } else {
      ASSERT_TRUE(sel.ok()) << sel.status() << " trial=" << trial;
      EXPECT_NEAR(sel->cost, brute, 1e-9 * (1 + brute)) << "trial=" << trial;
      EXPECT_TRUE(ChordQosSatisfied(input, sel->chosen));
    }
  }
  EXPECT_GT(infeasible_seen, 0);
  EXPECT_LT(infeasible_seen, 80);
}

TEST(ChordQos, UnconstrainedMatchesPlainDp) {
  Rng rng(888);
  for (int trial = 0; trial < 20; ++trial) {
    SelectionInput input = RandomInput(rng, 16, 30, 4, 5);
    auto plain = SelectChordDpQos(input);
    ASSERT_TRUE(plain.ok());
    // No bounds set: should equal the unconstrained optimum.
    SelectionInput copy = input;
    auto qos = SelectChordDpQos(copy);
    ASSERT_TRUE(qos.ok());
    EXPECT_NEAR(qos->cost, plain->cost, 1e-9);
  }
}

TEST(ChordQos, BoundForcesNearbyPointer) {
  SelectionInput input;
  input.bits = 16;
  input.self_id = 0;
  // Constrained peer at clockwise distance 40000 with bound 3: needs a
  // neighbor within id distance 7.
  input.peers = {{40000, 0.1, 3}, {39990, 0.0, -1}, {5, 100.0, -1}};
  input.k = 1;
  auto sel = SelectChordDpQos(input);
  ASSERT_TRUE(sel.ok()) << sel.status();
  ASSERT_EQ(sel->chosen.size(), 1u);
  // 39990 is 10 away (bitlen 4 > 3): only 40000 itself satisfies the bound.
  EXPECT_EQ(sel->chosen[0], 40000u);
}

}  // namespace
}  // namespace peercache::auxsel
