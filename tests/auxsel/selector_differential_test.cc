// Differential optimality checks (paper Secs. IV-B, V-B as executable
// claims): on randomized instances up to n = 256, the Pastry greedy
// selector must achieve exactly the trie DP's optimal Eq. 1 cost, the
// accelerated Chord selector must match the reference Chord DP's cost, and
// the Kademlia gain-tree fast path must match the independent XOR-metric
// range-recursion DP. These are the invariants the parallel experiment
// engine leans on — every per-node selection task runs one of the fast
// selectors, and this test is what certifies they are drop-in equal to the
// exact programs.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "auxsel/chord_dp.h"
#include "auxsel/chord_fast.h"
#include "auxsel/kademlia_dp.h"
#include "auxsel/kademlia_fast.h"
#include "auxsel/pastry_dp.h"
#include "auxsel/pastry_greedy.h"
#include "auxsel/selection_types.h"
#include "common/bits.h"
#include "common/random.h"
#include "test_util.h"

namespace peercache::auxsel {
namespace {

using ::peercache::auxsel::testing::RandomInput;

constexpr uint64_t kSeeds[] = {1, 42, 0xdead, 20260806, 0x5eedcafe};

struct Shape {
  int bits;
  int n_peers;
  int n_cores;
  int k;
};

// n stays <= 256 so the quadratic/cubic reference DPs finish quickly while
// still exercising deep tries and long successor chains.
constexpr Shape kShapes[] = {
    {8, 12, 3, 2},    {10, 40, 6, 5},   {16, 96, 8, 7},
    {16, 160, 12, 10}, {32, 256, 16, 8}, {32, 256, 0, 12},
};

double RelTol(double reference) { return 1e-9 * (1.0 + reference); }

TEST(SelectorDifferentialTest, PastryGreedyAchievesDpOptimum) {
  for (uint64_t seed : kSeeds) {
    Rng rng(MixHash64(seed ^ 0x9a57));
    for (const Shape& s : kShapes) {
      SelectionInput input = RandomInput(rng, s.bits, s.n_peers, s.n_cores,
                                         s.k);
      auto dp = SelectPastryDp(input);
      auto greedy = SelectPastryGreedy(input);
      ASSERT_TRUE(dp.ok()) << dp.status();
      ASSERT_TRUE(greedy.ok()) << greedy.status();
      // The paper's optimality claim: greedy cost == exact optimum.
      EXPECT_NEAR(greedy->cost, dp->cost, RelTol(dp->cost))
          << "seed " << seed << " n " << s.n_peers << " k " << s.k;
      // Both costs must also be honest Eq. 1 evaluations of the chosen set.
      EXPECT_NEAR(dp->cost, EvaluatePastryCost(input, dp->chosen),
                  RelTol(dp->cost));
      EXPECT_NEAR(greedy->cost, EvaluatePastryCost(input, greedy->chosen),
                  RelTol(greedy->cost));
    }
  }
}

TEST(SelectorDifferentialTest, ChordFastMatchesReferenceDp) {
  for (uint64_t seed : kSeeds) {
    Rng rng(MixHash64(seed ^ 0xc02d));
    for (const Shape& s : kShapes) {
      SelectionInput input = RandomInput(rng, s.bits, s.n_peers, s.n_cores,
                                         s.k);
      auto dp = SelectChordDp(input);
      auto fast = SelectChordFast(input);
      ASSERT_TRUE(dp.ok()) << dp.status();
      ASSERT_TRUE(fast.ok()) << fast.status();
      EXPECT_NEAR(fast->cost, dp->cost, RelTol(dp->cost))
          << "seed " << seed << " n " << s.n_peers << " k " << s.k;
      EXPECT_NEAR(dp->cost, EvaluateChordCost(input, dp->chosen),
                  RelTol(dp->cost));
      EXPECT_NEAR(fast->cost, EvaluateChordCost(input, fast->chosen),
                  RelTol(fast->cost));
    }
  }
}

TEST(SelectorDifferentialTest, KademliaFastMatchesReferenceDp) {
  // The fast path reuses the Pastry gain tree (bitlen(u XOR v) = bits −
  // lcp(u, v)); the DP is an independent range recursion over the
  // id-sorted peer array, so agreement here certifies both the identity
  // and the gain-tree generalization at b = 1.
  for (uint64_t seed : kSeeds) {
    Rng rng(MixHash64(seed ^ 0x4ad0));
    for (const Shape& s : kShapes) {
      SelectionInput input = RandomInput(rng, s.bits, s.n_peers, s.n_cores,
                                         s.k);
      auto dp = SelectKademliaDp(input);
      auto fast = SelectKademliaFast(input);
      ASSERT_TRUE(dp.ok()) << dp.status();
      ASSERT_TRUE(fast.ok()) << fast.status();
      EXPECT_NEAR(fast->cost, dp->cost, RelTol(dp->cost))
          << "seed " << seed << " n " << s.n_peers << " k " << s.k;
      EXPECT_NEAR(dp->cost, EvaluateKademliaCost(input, dp->chosen),
                  RelTol(dp->cost));
      EXPECT_NEAR(fast->cost, EvaluateKademliaCost(input, fast->chosen),
                  RelTol(fast->cost));
    }
  }
}

TEST(SelectorDifferentialTest, DegenerateBudgetsAgree) {
  // k = 0 (no auxiliaries allowed) and k >= n (everything allowed) are the
  // boundary rows of both DPs; the fast selectors must agree there too.
  Rng rng(0xb0a7);
  for (int k : {0, 300}) {
    SelectionInput input = RandomInput(rng, 16, 64, 5, k);
    auto pastry_dp = SelectPastryDp(input);
    auto pastry_greedy = SelectPastryGreedy(input);
    ASSERT_TRUE(pastry_dp.ok() && pastry_greedy.ok());
    EXPECT_NEAR(pastry_greedy->cost, pastry_dp->cost, RelTol(pastry_dp->cost));
    auto chord_dp = SelectChordDp(input);
    auto chord_fast = SelectChordFast(input);
    ASSERT_TRUE(chord_dp.ok() && chord_fast.ok());
    EXPECT_NEAR(chord_fast->cost, chord_dp->cost, RelTol(chord_dp->cost));
    auto kad_dp = SelectKademliaDp(input);
    auto kad_fast = SelectKademliaFast(input);
    ASSERT_TRUE(kad_dp.ok() && kad_fast.ok());
    EXPECT_NEAR(kad_fast->cost, kad_dp->cost, RelTol(kad_dp->cost));
  }
}

}  // namespace
}  // namespace peercache::auxsel
