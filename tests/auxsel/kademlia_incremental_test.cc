// Differential tests for the persistent Kademlia maintainer: randomized
// delta streams must stay cost-equal to a fresh SelectKademliaFast (and,
// transitively through the selector differential suite, to the independent
// XOR-metric range DP) at every step, plus the maintainer-contract edge
// cases every backend must honor (departed cores, empty state, cached
// reselection).

#include <gtest/gtest.h>

#include <vector>

#include "auxsel/kademlia_fast.h"
#include "auxsel/kademlia_maintainer.h"
#include "auxsel/selection_types.h"
#include "common/random.h"
#include "maintainer_test_util.h"
#include "test_util.h"

namespace peercache::auxsel {
namespace {

using ::peercache::auxsel::testing::RandomInput;
using ::peercache::auxsel::testing::ReplayDeltasAgainstFresh;

TEST(KademliaMaintainer, RandomDeltaStreamMatchesFreshSelect) {
  Rng rng(0x4ad701);
  KademliaAuxMaintainer m(/*bits=*/12, /*k=*/4, /*self_id=*/99);
  ReplayDeltasAgainstFresh(m, SelectKademliaFast, EvaluateKademliaCost, rng,
                           /*steps=*/250);
}

TEST(KademliaMaintainer, SecondSeedAndLargerBudget) {
  Rng rng(0x4ad702);
  KademliaAuxMaintainer m(/*bits=*/16, /*k=*/8, /*self_id=*/0x7777);
  ReplayDeltasAgainstFresh(m, SelectKademliaFast, EvaluateKademliaCost, rng,
                           /*steps=*/200);
}

TEST(KademliaMaintainer, IncrementalCostPricingMatchesEq1) {
  // BaseCost − TotalGain pricing against the reference evaluator on a
  // handmade instance where the numbers are easy to audit by hand.
  KademliaAuxMaintainer m(/*bits=*/8, /*k=*/1, /*self_id=*/0);
  ASSERT_TRUE(m.OnPeerJoin(0b10000000, 10.0).ok());
  ASSERT_TRUE(m.OnPeerJoin(0b10000001, 5.0).ok());
  ASSERT_TRUE(m.SetCores({0b01000000}).ok());
  auto sel = m.Reselect();
  ASSERT_TRUE(sel.ok());
  EXPECT_NEAR(sel->cost, EvaluateKademliaCost(m.FreshInput(), sel->chosen),
              1e-12);
}

TEST(KademliaMaintainer, DepartedCoreStaysUntilSetCoresDropsIt) {
  KademliaAuxMaintainer m(/*bits=*/8, /*k=*/2, /*self_id=*/0);
  ASSERT_TRUE(m.SetCores({64, 128}).ok());
  ASSERT_TRUE(m.OnPeerJoin(10, 5.0).ok());
  ASSERT_TRUE(m.OnPeerJoin(64, 3.0).ok());
  ASSERT_TRUE(m.OnPeerLeave(64).ok());
  SelectionInput state = m.FreshInput();
  EXPECT_EQ(state.core_ids, (std::vector<uint64_t>{64, 128}));
  ASSERT_EQ(state.peers.size(), 1u);  // 64 keeps its leaf but carries no f
  EXPECT_EQ(m.tracked_peers(), 3u);

  auto changed = m.SetCores({128});
  ASSERT_TRUE(changed.ok());
  EXPECT_EQ(changed.value(), 1u);
  EXPECT_EQ(m.tracked_peers(), 2u);  // zero-frequency ex-core dropped
  auto inc = m.Reselect();
  ASSERT_TRUE(inc.ok());
  auto ref = SelectKademliaFast(m.FreshInput());
  ASSERT_TRUE(ref.ok());
  EXPECT_NEAR(inc->cost, ref->cost, 1e-12);
}

TEST(KademliaMaintainer, EmptyStateSelectsNothing) {
  KademliaAuxMaintainer m(/*bits=*/8, /*k=*/3, /*self_id=*/7);
  auto sel = m.Reselect();
  ASSERT_TRUE(sel.ok()) << sel.status();
  EXPECT_TRUE(sel->chosen.empty());
  EXPECT_EQ(sel->cost, 0.0);
  EXPECT_EQ(m.total_frequency(), 0.0);
}

TEST(KademliaMaintainer, NoDeltasReturnsCachedSelection) {
  Rng rng(0x4ad703);
  SelectionInput input =
      RandomInput(rng, /*bits=*/10, /*n_peers=*/25, /*n_cores=*/4, /*k=*/3);
  KademliaAuxMaintainer m(input.bits, input.k, input.self_id);
  ASSERT_TRUE(m.SetCores(input.core_ids).ok());
  for (const PeerFreq& p : input.peers) {
    if (p.frequency > 0.0) {
      ASSERT_TRUE(m.OnPeerJoin(p.id, p.frequency).ok());
    }
  }
  auto first = m.Reselect();
  ASSERT_TRUE(first.ok());
  // Idempotent deltas must leave the cached selection untouched.
  for (const PeerFreq& p : input.peers) {
    if (p.frequency > 0.0) {
      ASSERT_TRUE(m.OnFrequencyDelta(p.id, p.frequency).ok());
    }
  }
  auto second = m.Reselect();
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->chosen, second->chosen);
  EXPECT_EQ(first->cost, second->cost);
}

}  // namespace
}  // namespace peercache::auxsel
