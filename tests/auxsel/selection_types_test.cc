#include "auxsel/selection_types.h"

#include <gtest/gtest.h>

namespace peercache::auxsel {
namespace {

TEST(ValidateInput, AcceptsWellFormed) {
  SelectionInput input;
  input.bits = 16;
  input.self_id = 5;
  input.peers = {{1, 2.0, -1}, {2, 3.0, 4}};
  input.core_ids = {9};
  input.k = 3;
  EXPECT_TRUE(ValidateInput(input).ok());
}

TEST(ValidateInput, RejectsBadInputs) {
  SelectionInput base;
  base.bits = 8;
  base.self_id = 5;
  base.peers = {{1, 2.0, -1}};
  base.k = 1;

  SelectionInput input = base;
  input.bits = 65;
  EXPECT_FALSE(ValidateInput(input).ok());

  input = base;
  input.k = -1;
  EXPECT_FALSE(ValidateInput(input).ok());

  input = base;
  input.self_id = 300;
  EXPECT_FALSE(ValidateInput(input).ok());

  input = base;
  input.peers.push_back({1, 1.0, -1});  // duplicate
  EXPECT_FALSE(ValidateInput(input).ok());

  input = base;
  input.peers[0].id = 5;  // self
  EXPECT_FALSE(ValidateInput(input).ok());

  input = base;
  input.core_ids = {999};  // out of range
  EXPECT_FALSE(ValidateInput(input).ok());
}

TEST(EvaluatePastryCost, HandComputed) {
  SelectionInput input;
  input.bits = 4;
  input.self_id = 0b0000;
  input.peers = {{0b1011, 2.0, -1}, {0b1111, 3.0, -1}};
  input.core_ids = {0b1011};
  // 1011 is core: d = 0, cost 2*(1+0) = 2.
  // 1111: nearest neighbor 1011, lcp = 1, d = 3, cost 3*(1+3) = 12.
  EXPECT_DOUBLE_EQ(EvaluatePastryCost(input, {}), 14.0);
  // Choosing 1111 as auxiliary: its own d = 0 -> cost 2 + 3 = 5.
  EXPECT_DOUBLE_EQ(EvaluatePastryCost(input, {0b1111}), 5.0);
}

TEST(EvaluatePastryCost, NoNeighborsCapsAtBits) {
  SelectionInput input;
  input.bits = 4;
  input.self_id = 0;
  input.peers = {{7, 2.0, -1}};
  EXPECT_DOUBLE_EQ(EvaluatePastryCost(input, {}), 2.0 * (1 + 4));
}

TEST(EvaluateChordCost, HandComputed) {
  SelectionInput input;
  input.bits = 8;
  input.self_id = 10;
  input.peers = {{20, 1.0, -1}, {30, 5.0, -1}};
  input.core_ids = {18};
  // Peer 20: from core 18 distance 2, bitlen = 2. cost 1*(1+2) = 3.
  // Peer 30: from 18 distance 12, bitlen = 4. cost 5*(1+4) = 25.
  EXPECT_DOUBLE_EQ(EvaluateChordCost(input, {}), 28.0);
  // Aux at 29: peer 30 served at distance 1: cost 5*(1+1) = 10.
  input.peers.push_back({29, 0.0, -1});
  EXPECT_DOUBLE_EQ(EvaluateChordCost(input, {29}), 13.0);
}

TEST(EvaluateChordCost, OvershootingNeighborDoesNotHelp) {
  SelectionInput input;
  input.bits = 8;
  input.self_id = 0;
  input.peers = {{100, 1.0, -1}};
  // Neighbor just past the peer: clockwise distance 101 -> 255, bitlen 8 ==
  // the no-neighbor cap.
  EXPECT_DOUBLE_EQ(EvaluateChordCost(input, {101}), 1.0 * (1 + 8));
}

TEST(QosSatisfied, ChecksBounds) {
  SelectionInput input;
  input.bits = 8;
  input.self_id = 0;
  input.peers = {{0b10000000, 1.0, 2}};
  EXPECT_FALSE(PastryQosSatisfied(input, {}));
  // Neighbor sharing 6 bits: d = 2 <= bound.
  EXPECT_TRUE(PastryQosSatisfied(input, {0b10000010}));
  EXPECT_FALSE(PastryQosSatisfied(input, {0b10001000}));  // d = 4

  input.peers = {{100, 1.0, 3}};
  EXPECT_FALSE(ChordQosSatisfied(input, {}));
  EXPECT_TRUE(ChordQosSatisfied(input, {95}));   // bitlen(5) = 3
  EXPECT_FALSE(ChordQosSatisfied(input, {80}));  // bitlen(20) = 5
}

TEST(QosSatisfied, UnboundedAlwaysOk) {
  SelectionInput input;
  input.bits = 8;
  input.self_id = 0;
  input.peers = {{100, 1.0, -1}};
  EXPECT_TRUE(PastryQosSatisfied(input, {}));
  EXPECT_TRUE(ChordQosSatisfied(input, {}));
}

}  // namespace
}  // namespace peercache::auxsel
