// Unit tests for the Kademlia XOR-metric selection stack: brute-force
// optimality of the DP and fast selectors on small instances, the
// bitlen(u XOR v) = b - lcp(u, v) identity that makes the Pastry trie
// machinery serve the XOR geometry, the honest-cost contract, structural
// properties of the chosen sets, and the oblivious baseline's slice
// discipline.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <unordered_set>
#include <vector>

#include "auxsel/kademlia_dp.h"
#include "auxsel/kademlia_fast.h"
#include "auxsel/oblivious.h"
#include "auxsel/selection_types.h"
#include "common/bits.h"
#include "common/random.h"
#include "test_util.h"

namespace peercache::auxsel {
namespace {

using ::peercache::auxsel::testing::BruteForceBestCost;
using ::peercache::auxsel::testing::Candidates;
using ::peercache::auxsel::testing::RandomInput;

double RelTol(double reference) { return 1e-9 * (1.0 + reference); }

TEST(KademliaSelector, DpMatchesBruteForceOnSmallInstances) {
  Rng rng(0x4ad801);
  for (int trial = 0; trial < 30; ++trial) {
    SelectionInput input = RandomInput(rng, /*bits=*/10, /*n_peers=*/9,
                                       /*n_cores=*/2, /*k=*/3);
    auto dp = SelectKademliaDp(input);
    ASSERT_TRUE(dp.ok()) << dp.status();
    const double best = BruteForceBestCost(input, EvaluateKademliaCost);
    EXPECT_NEAR(dp->cost, best, RelTol(best)) << "trial " << trial;
  }
}

TEST(KademliaSelector, FastMatchesBruteForceOnSmallInstances) {
  Rng rng(0x4ad802);
  for (int trial = 0; trial < 30; ++trial) {
    SelectionInput input = RandomInput(rng, /*bits=*/8, /*n_peers=*/10,
                                       /*n_cores=*/3, /*k=*/2);
    auto fast = SelectKademliaFast(input);
    ASSERT_TRUE(fast.ok()) << fast.status();
    const double best = BruteForceBestCost(input, EvaluateKademliaCost);
    EXPECT_NEAR(fast->cost, best, RelTol(best)) << "trial " << trial;
  }
}

TEST(KademliaSelector, EvaluatorEqualsPastryEvaluator) {
  // bitlen(u XOR v) = bits - lcp(u, v), so the two Eq. 1 evaluations are
  // the same function. The implementations are independent (XOR bitlen vs
  // prefix comparison); this pins the identity rather than assuming it.
  Rng rng(0x4ad803);
  for (int trial = 0; trial < 50; ++trial) {
    SelectionInput input = RandomInput(rng, /*bits=*/16, /*n_peers=*/40,
                                       /*n_cores=*/5, /*k=*/4);
    std::vector<uint64_t> cands = Candidates(input);
    std::vector<uint64_t> aux(
        cands.begin(),
        cands.begin() +
            static_cast<long>(rng.UniformU64(cands.size() + 1)));
    EXPECT_DOUBLE_EQ(EvaluateKademliaCost(input, aux),
                     EvaluatePastryCost(input, aux))
        << "trial " << trial;
  }
}

TEST(KademliaSelector, BitLengthXorIdentity) {
  // The scalar form of the same identity, over exhaustive 8-bit pairs.
  const int bits = 8;
  for (uint64_t u = 0; u < 256; ++u) {
    for (uint64_t v = 0; v < 256; ++v) {
      ASSERT_EQ(BitLength(u ^ v),
                bits - CommonPrefixLength(u, v, bits))
          << "u=" << u << " v=" << v;
    }
  }
}

TEST(KademliaSelector, ChosenAreSortedDistinctCandidates) {
  Rng rng(0x4ad804);
  for (int trial = 0; trial < 20; ++trial) {
    SelectionInput input = RandomInput(rng, /*bits=*/12, /*n_peers=*/48,
                                       /*n_cores=*/6, /*k=*/5);
    for (auto* select : {&SelectKademliaDp, &SelectKademliaFast}) {
      auto sel = (*select)(input);
      ASSERT_TRUE(sel.ok()) << sel.status();
      EXPECT_LE(sel->chosen.size(), static_cast<size_t>(input.k));
      EXPECT_TRUE(
          std::is_sorted(sel->chosen.begin(), sel->chosen.end()));
      std::vector<uint64_t> cands = Candidates(input);
      std::unordered_set<uint64_t> cand_set(cands.begin(), cands.end());
      std::unordered_set<uint64_t> seen;
      for (uint64_t id : sel->chosen) {
        EXPECT_TRUE(cand_set.count(id)) << "non-candidate chosen: " << id;
        EXPECT_TRUE(seen.insert(id).second) << "duplicate chosen: " << id;
      }
    }
  }
}

TEST(KademliaSelector, NoPeersSelectsNothing) {
  SelectionInput input;
  input.bits = 8;
  input.k = 3;
  input.self_id = 1;
  input.core_ids = {2};
  for (auto* select : {&SelectKademliaDp, &SelectKademliaFast}) {
    auto sel = (*select)(input);
    ASSERT_TRUE(sel.ok()) << sel.status();
    EXPECT_TRUE(sel->chosen.empty());
    EXPECT_EQ(sel->cost, 0.0);
  }
}

TEST(KademliaSelector, ZeroBudgetPricesCoreOnlyCost) {
  Rng rng(0x4ad805);
  SelectionInput input = RandomInput(rng, /*bits=*/10, /*n_peers=*/20,
                                     /*n_cores=*/4, /*k=*/0);
  for (auto* select : {&SelectKademliaDp, &SelectKademliaFast}) {
    auto sel = (*select)(input);
    ASSERT_TRUE(sel.ok()) << sel.status();
    EXPECT_TRUE(sel->chosen.empty());
    EXPECT_NEAR(sel->cost, EvaluateKademliaCost(input, {}),
                RelTol(sel->cost));
  }
}

TEST(KademliaSelector, ObliviousRespectsBudgetAndHonestCost) {
  Rng outer(0x4ad806);
  for (int trial = 0; trial < 20; ++trial) {
    SelectionInput input = RandomInput(outer, /*bits=*/12, /*n_peers=*/40,
                                       /*n_cores=*/5, /*k=*/6);
    Rng rng(SplitSeed(0x4ad806, static_cast<uint64_t>(trial)));
    auto sel = SelectKademliaOblivious(input, rng);
    ASSERT_TRUE(sel.ok()) << sel.status();
    std::vector<uint64_t> cands = Candidates(input);
    EXPECT_EQ(sel->chosen.size(),
              std::min(static_cast<size_t>(input.k), cands.size()));
    std::unordered_set<uint64_t> cand_set(cands.begin(), cands.end());
    for (uint64_t id : sel->chosen) {
      EXPECT_TRUE(cand_set.count(id)) << "non-candidate chosen: " << id;
      EXPECT_NE(id, input.self_id);
    }
    EXPECT_NEAR(sel->cost, EvaluateKademliaCost(input, sel->chosen),
                RelTol(sel->cost));
    // The optimal selector can never do worse than a frequency-blind draw.
    auto opt = SelectKademliaFast(input);
    ASSERT_TRUE(opt.ok());
    EXPECT_LE(opt->cost, sel->cost + RelTol(sel->cost));
  }
}

TEST(KademliaSelector, QosAgreesWithPastryQos) {
  // The QoS predicate inherits the same identity as the evaluator.
  Rng rng(0x4ad807);
  for (int trial = 0; trial < 30; ++trial) {
    SelectionInput input = RandomInput(rng, /*bits=*/10, /*n_peers=*/15,
                                       /*n_cores=*/3, /*k=*/3);
    for (PeerFreq& p : input.peers) {
      p.delay_bound = static_cast<int>(rng.UniformU64(
          static_cast<uint64_t>(input.bits) + 1));
    }
    std::vector<uint64_t> cands = Candidates(input);
    std::vector<uint64_t> aux(
        cands.begin(),
        cands.begin() +
            static_cast<long>(rng.UniformU64(cands.size() + 1)));
    EXPECT_EQ(KademliaQosSatisfied(input, aux),
              PastryQosSatisfied(input, aux))
        << "trial " << trial;
  }
}

TEST(KademliaSelector, RejectsInvalidInput) {
  SelectionInput input;
  input.bits = 8;
  input.k = -1;  // negative budget
  input.self_id = 1;
  EXPECT_FALSE(SelectKademliaDp(input).ok());
  EXPECT_FALSE(SelectKademliaFast(input).ok());
  input.k = 2;
  input.peers.push_back(PeerFreq{1, 5.0, -1});  // peer == self
  EXPECT_FALSE(SelectKademliaDp(input).ok());
  EXPECT_FALSE(SelectKademliaFast(input).ok());
}

}  // namespace
}  // namespace peercache::auxsel
