#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "auxsel/chord_fast.h"
#include "auxsel/oblivious.h"
#include "auxsel/pastry_greedy.h"
#include "auxsel/selection_types.h"
#include "common/bits.h"
#include "common/random.h"
#include "common/zipf.h"
#include "test_util.h"

namespace peercache::auxsel {
namespace {

using ::peercache::auxsel::testing::RandomInput;

TEST(Oblivious, PicksExactlyKWhenEnoughCandidates) {
  Rng rng(1);
  SelectionInput input = RandomInput(rng, 16, 50, 4, 8);
  Rng pick_rng(2);
  auto chord = SelectChordOblivious(input, pick_rng);
  auto pastry = SelectPastryOblivious(input, pick_rng);
  ASSERT_TRUE(chord.ok());
  ASSERT_TRUE(pastry.ok());
  EXPECT_EQ(chord->chosen.size(), 8u);
  EXPECT_EQ(pastry->chosen.size(), 8u);
}

TEST(Oblivious, NeverPicksCoresSelfOrDuplicates) {
  Rng rng(33);
  for (int trial = 0; trial < 20; ++trial) {
    SelectionInput input = RandomInput(rng, 12, 30, 6, 10);
    Rng pick_rng(100 + static_cast<uint64_t>(trial));
    for (auto* fn : {&SelectChordOblivious, &SelectPastryOblivious}) {
      auto sel = (*fn)(input, pick_rng);
      ASSERT_TRUE(sel.ok());
      std::set<uint64_t> seen;
      for (uint64_t id : sel->chosen) {
        EXPECT_NE(id, input.self_id);
        EXPECT_TRUE(std::find(input.core_ids.begin(), input.core_ids.end(),
                              id) == input.core_ids.end());
        EXPECT_TRUE(seen.insert(id).second) << "duplicate pick";
      }
    }
  }
}

TEST(Oblivious, SpreadsAcrossDistanceSlices) {
  // With k equal to the number of nonempty slices, the Chord baseline puts
  // one pointer per slice (the paper's r = 1 configuration).
  SelectionInput input;
  input.bits = 16;
  input.self_id = 0;
  // Two candidates in each of four far-apart slices.
  for (uint64_t base : {1u << 4, 1u << 7, 1u << 10, 1u << 13}) {
    input.peers.push_back(PeerFreq{base + 1, 1.0, -1});
    input.peers.push_back(PeerFreq{base + 2, 1.0, -1});
  }
  input.k = 4;
  Rng rng(9);
  auto sel = SelectChordOblivious(input, rng);
  ASSERT_TRUE(sel.ok());
  ASSERT_EQ(sel->chosen.size(), 4u);
  std::set<int> slices;
  for (uint64_t id : sel->chosen) {
    slices.insert(BitLength(id) - 1);
  }
  EXPECT_EQ(slices.size(), 4u) << "one pick per nonempty slice expected";
}

TEST(Oblivious, OptimalNeverWorseOnSkewedWorkloads) {
  // The headline claim, in miniature: on zipf-skewed frequencies the
  // frequency-aware optimum has cost <= the oblivious baseline.
  Rng rng(424242);
  ZipfDistribution zipf(200, 1.2);
  for (int trial = 0; trial < 10; ++trial) {
    SelectionInput input = RandomInput(rng, 20, 200, 8, 11);
    for (size_t i = 0; i < input.peers.size(); ++i) {
      input.peers[i].frequency = zipf.Pmf(i + 1) * 1e6;
    }
    auto opt_chord = SelectChordFast(input);
    auto opt_pastry = SelectPastryGreedy(input);
    Rng pick_rng(trial);
    auto obl_chord = SelectChordOblivious(input, pick_rng);
    auto obl_pastry = SelectPastryOblivious(input, pick_rng);
    ASSERT_TRUE(opt_chord.ok() && opt_pastry.ok() && obl_chord.ok() &&
                obl_pastry.ok());
    EXPECT_LE(opt_chord->cost, obl_chord->cost + 1e-6);
    EXPECT_LE(opt_pastry->cost, obl_pastry->cost + 1e-6);
    // On this heavily skewed workload the gap should be strict and large.
    EXPECT_LT(opt_chord->cost, 0.95 * obl_chord->cost);
    EXPECT_LT(opt_pastry->cost, 0.95 * obl_pastry->cost);
  }
}

}  // namespace
}  // namespace peercache::auxsel
