// Property tests for the bounded-memory frequency machinery: the count-min
// sketch and flat space-saving summary (common/count_min.h) and the
// FrequencyTable sketch mode they compose into, plus a selector
// differential pinning how much selection quality a headline-sized sketch
// may cost against exact tables on a zipf-like stream.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "auxsel/chord_fast.h"
#include "auxsel/frequency_table.h"
#include "common/count_min.h"
#include "common/random.h"
#include "test_util.h"

namespace peercache::auxsel {
namespace {

using proptest::Case;
using proptest::RunProperty;

// ---------------------------------------------------------------------------
// Count-min sketch.

TEST(CountMinSketch, NeverUnderestimatesInsertOnlyStreams) {
  auto outcome = RunProperty(11, 300, [](Case& c) -> std::string {
    const size_t width = size_t{1} << c.Range("log_width", 1, 6);
    const int depth = static_cast<int>(c.Range("depth", 1, 5));
    CountMinSketch cm(width, depth, c.Range("seed", 0, 1000));
    std::map<uint64_t, uint64_t> truth;
    const int ops = static_cast<int>(c.Range("ops", 1, 120));
    for (int i = 0; i < ops; ++i) {
      const uint64_t key = c.Range("key", 0, 30);
      const uint64_t weight = c.Range("weight", 1, 50);
      cm.Add(key, weight);
      truth[key] += weight;
    }
    for (const auto& [key, count] : truth) {
      if (cm.Estimate(key) < count) {
        return "underestimate: key " + std::to_string(key) + " true " +
               std::to_string(count) + " est " +
               std::to_string(cm.Estimate(key));
      }
    }
    return "";
  });
  EXPECT_TRUE(outcome.ok) << outcome.message << "\n  "
                          << outcome.counterexample;
}

TEST(CountMinSketch, MergeCommutesAndEqualsConcatenatedStream) {
  auto outcome = RunProperty(12, 200, [](Case& c) -> std::string {
    const size_t width = size_t{1} << c.Range("log_width", 1, 5);
    const int depth = static_cast<int>(c.Range("depth", 1, 4));
    const uint64_t seed = c.Range("seed", 0, 1000);
    CountMinSketch cm1(width, depth, seed), cm2(width, depth, seed);
    CountMinSketch all(width, depth, seed);
    const int ops = static_cast<int>(c.Range("ops", 1, 80));
    for (int i = 0; i < ops; ++i) {
      const uint64_t key = c.Range("key", 0, 30);
      const uint64_t weight = c.Range("weight", 1, 20);
      (c.Bool("second_stream") ? cm2 : cm1).Add(key, weight);
      all.Add(key, weight);
    }
    CountMinSketch a = cm1;
    a.Merge(cm2);
    CountMinSketch b = cm2;
    b.Merge(cm1);
    if (a.stream_length() != b.stream_length() ||
        a.stream_length() != all.stream_length()) {
      return "merge changed the stream length";
    }
    for (uint64_t key = 0; key <= 30; ++key) {
      if (a.Estimate(key) != b.Estimate(key)) {
        return "merge is not commutative at key " + std::to_string(key);
      }
      if (a.Estimate(key) != all.Estimate(key)) {
        return "merge differs from the concatenated stream at key " +
               std::to_string(key);
      }
    }
    return "";
  });
  EXPECT_TRUE(outcome.ok) << outcome.message << "\n  "
                          << outcome.counterexample;
}

TEST(CountMinSketch, ForgetZeroesTheKeyAndPreservesNonNegativity) {
  CountMinSketch cm(64, 4, 7);
  cm.Add(3, 10);
  cm.Add(9, 4);
  cm.Forget(3);
  EXPECT_EQ(cm.Estimate(3), 0u);
  // A later re-add starts from zero: the absolute-weight contract that
  // FrequencyTable::Forget's documentation relies on.
  cm.Add(3, 2);
  EXPECT_GE(cm.Estimate(3), 2u);
  EXPECT_GE(cm.Estimate(9), 4u) << "non-colliding key lost mass";
}

// ---------------------------------------------------------------------------
// Flat space-saving summary.

TEST(SpaceSavingFlat, ErrorBoundAndHeavyHitterCoverage) {
  auto outcome = RunProperty(13, 300, [](Case& c) -> std::string {
    const size_t capacity = c.Range("capacity", 1, 16);
    SpaceSavingFlat top(capacity);
    std::map<uint64_t, uint64_t> truth;
    uint64_t n = 0;
    const int ops = static_cast<int>(c.Range("ops", 1, 120));
    for (int i = 0; i < ops; ++i) {
      const uint64_t key = c.Range("key", 0, 30);
      const uint64_t weight = c.Range("weight", 1, 20);
      top.Offer(key, weight);
      truth[key] += weight;
      n += weight;
    }
    const double bound =
        static_cast<double>(n) / static_cast<double>(capacity);
    for (const FlatTopEntry& e : top.Entries()) {
      const uint64_t true_count = truth[e.key];
      if (e.count < true_count) return "summary underestimates";
      if (e.count > true_count + e.error) {
        return "estimate exceeds true + error";
      }
      if (static_cast<double>(e.error) > bound) {
        return "error exceeds N/m";
      }
    }
    // Every key with true frequency > N/m must be tracked.
    for (const auto& [key, count] : truth) {
      if (static_cast<double>(count) > bound && !top.Contains(key)) {
        return "heavy hitter " + std::to_string(key) + " not tracked";
      }
    }
    return "";
  });
  EXPECT_TRUE(outcome.ok) << outcome.message << "\n  "
                          << outcome.counterexample;
}

TEST(SpaceSavingFlat, EvictionTieBreaksBySmallestKey) {
  SpaceSavingFlat top(2);
  top.Offer(9);
  top.Offer(5);
  uint64_t evicted = 0;
  ASSERT_TRUE(top.Offer(3, 1, &evicted)) << "full summary must evict";
  EXPECT_EQ(evicted, 5u) << "min-count tie must break by smallest key";
  EXPECT_TRUE(top.Contains(9));
  EXPECT_TRUE(top.Contains(3));
  EXPECT_FALSE(top.Contains(5));
}

// ---------------------------------------------------------------------------
// FrequencyTable sketch mode.

FreqSketchParams SketchParams(size_t top, size_t width, int depth) {
  FreqSketchParams p;
  p.top_capacity = top;
  p.cm_width = width;
  p.cm_depth = depth;
  return p;
}

TEST(FrequencyTableSketch, EqualsExactWhenSummaryNeverEvicts) {
  auto outcome = RunProperty(14, 200, [](Case& c) -> std::string {
    // At most 40 distinct ids against 64 heavy-hitter slots: the summary
    // never evicts, so min(summary, sketch) must equal the exact count.
    FrequencyTable exact;
    FrequencyTable sketch(0, SketchParams(64, 64, 4));
    std::set<uint64_t> recorded;
    const int ops = static_cast<int>(c.Range("ops", 1, 100));
    for (int i = 0; i < ops; ++i) {
      const uint64_t id = c.Range("id", 1, 40);
      const uint64_t weight = c.Range("weight", 1, 30);
      exact.Record(id, weight);
      sketch.Record(id, weight);
      recorded.insert(id);
    }
    if (exact.distinct() != sketch.distinct()) return "distinct differs";
    if (exact.total() != sketch.total()) return "total differs";
    // Only recorded ids are comparable: for an id the summary has never
    // seen, sketch mode answers with the raw count-min estimate, which may
    // collide with a recorded id's counters.
    for (uint64_t id : recorded) {
      if (exact.ObservedWeight(id) != sketch.ObservedWeight(id)) {
        return "weight differs at id " + std::to_string(id) + ": exact " +
               std::to_string(exact.ObservedWeight(id)) + " sketch " +
               std::to_string(sketch.ObservedWeight(id));
      }
    }
    auto a = exact.Snapshot(0);
    auto b = sketch.Snapshot(0);
    if (a.size() != b.size()) return "snapshot size differs";
    auto by_id = [](const PeerFreq& x, const PeerFreq& y) {
      return x.id < y.id;
    };
    std::sort(a.begin(), a.end(), by_id);
    std::sort(b.begin(), b.end(), by_id);
    for (size_t i = 0; i < a.size(); ++i) {
      if (a[i].id != b[i].id || a[i].frequency != b[i].frequency) {
        return "snapshot entry differs";
      }
    }
    return "";
  });
  EXPECT_TRUE(outcome.ok) << outcome.message << "\n  "
                          << outcome.counterexample;
}

TEST(FrequencyTableSketch, TrackedWeightIsATighterOverestimate) {
  auto outcome = RunProperty(15, 200, [](Case& c) -> std::string {
    // Narrow summary + narrow sketch: evictions and collisions both
    // happen, and every tracked weight must still overestimate the truth
    // while staying <= the raw count-min estimate.
    FrequencyTable sketch(0, SketchParams(4, 8, 2));
    CountMinSketch shadow(8, 2, FreqSketchParams{}.seed);
    std::map<uint64_t, uint64_t> truth;
    const int ops = static_cast<int>(c.Range("ops", 1, 120));
    for (int i = 0; i < ops; ++i) {
      const uint64_t id = c.Range("id", 1, 20);
      const uint64_t weight = c.Range("weight", 1, 10);
      sketch.Record(id, weight);
      shadow.Add(id, weight);
      truth[id] += weight;
    }
    for (const PeerFreq& p : sketch.Snapshot(0)) {
      if (p.frequency < static_cast<double>(truth[p.id])) {
        return "tracked weight underestimates id " + std::to_string(p.id);
      }
      if (p.frequency > static_cast<double>(shadow.Estimate(p.id))) {
        return "tracked weight exceeds the count-min bound";
      }
    }
    return "";
  });
  EXPECT_TRUE(outcome.ok) << outcome.message << "\n  "
                          << outcome.counterexample;
}

// ---------------------------------------------------------------------------
// Selector differential: exact vs headline-sized sketch tables.

/// Pinned tolerance: on a 400-peer zipf-like stream, selection driven by a
/// headline-sized sketch (40 heavy-hitter slots) must stay within 10% of
/// the exact-table selection's Eq. 1 cost, evaluated under the exact
/// frequencies. bench/freq_sketch measures ~4% end to end; 10% leaves
/// headroom without letting a regression to obliviousness (~40%+) pass.
constexpr double kSketchCostTolerance = 1.10;

TEST(FreqSketchDifferential, SketchDrivenSelectionCostWithinTolerance) {
  Rng rng(0xfeedULL);
  const int bits = 32;
  const uint64_t space = uint64_t{1} << bits;
  const auto ids = rng.SampleDistinct(space, 411);
  const uint64_t self = ids[0];
  std::vector<uint64_t> cores(ids.begin() + 1, ids.begin() + 11);

  FrequencyTable exact;
  FrequencyTable sketch(0, SketchParams(40, 16, 2));
  for (size_t r = 0; r < 400; ++r) {
    // Zipf-like weights: rank r gets ~3000 / (r+1)^1.2 queries.
    const double w = 3000.0 / std::pow(static_cast<double>(r + 1), 1.2);
    const uint64_t weight = std::max<uint64_t>(1, static_cast<uint64_t>(w));
    exact.Record(ids[11 + r], weight);
    sketch.Record(ids[11 + r], weight);
  }

  SelectionInput input;
  input.bits = bits;
  input.self_id = self;
  input.core_ids = cores;
  input.k = 10;
  input.peers = exact.Snapshot(self);

  Result<Selection> exact_sel = SelectChordFast(input);
  ASSERT_TRUE(exact_sel.ok()) << exact_sel.status();
  const double exact_cost = EvaluateChordCost(input, exact_sel->chosen);

  SelectionInput sketch_input = input;
  sketch_input.peers = sketch.Snapshot(self);
  ASSERT_LE(sketch_input.peers.size(), 40u);
  Result<Selection> sketch_sel = SelectChordFast(sketch_input);
  ASSERT_TRUE(sketch_sel.ok()) << sketch_sel.status();
  // Price the sketch-driven choice under the EXACT frequencies: the cost
  // of selecting from a truncated view, measured on the true workload.
  const double sketch_cost = EvaluateChordCost(input, sketch_sel->chosen);

  EXPECT_GE(sketch_cost, exact_cost - 1e-9)
      << "selection from a truncated view cannot beat the exact optimum";
  EXPECT_LE(sketch_cost, exact_cost * kSketchCostTolerance)
      << "sketch-driven selection degraded Eq. 1 cost beyond the pinned "
         "tolerance: exact "
      << exact_cost << " sketch " << sketch_cost;
}

}  // namespace
}  // namespace peercache::auxsel
