// The gain tree's arithmetic must agree with the independent Eq. 1
// evaluator: Cost(∅) - Σ(selected gains) == Cost(selected set), for every
// prefix of the selection.

#include <gtest/gtest.h>

#include <vector>

#include "auxsel/pastry_greedy.h"
#include "auxsel/selection_types.h"
#include "common/random.h"
#include "test_util.h"

namespace peercache::auxsel {
namespace {

using ::peercache::auxsel::testing::RandomInput;

TEST(GainAccounting, TotalGainMatchesEvaluator) {
  Rng rng(515151);
  for (int trial = 0; trial < 40; ++trial) {
    const int bits = 6 + static_cast<int>(rng.UniformU64(26));
    const int n = 1 + static_cast<int>(rng.UniformU64(50));
    const int cores = static_cast<int>(rng.UniformU64(5));
    const int k = 1 + static_cast<int>(rng.UniformU64(8));
    SelectionInput input = RandomInput(rng, bits, n, cores, k);
    auto tree = PastryGainTree::FromInput(input);
    ASSERT_TRUE(tree.ok()) << tree.status();
    const double base = EvaluatePastryCost(input, {});
    const double with_aux =
        EvaluatePastryCost(input, tree->SelectAuxiliary());
    EXPECT_NEAR(base - tree->TotalGain(), with_aux, 1e-9 * (1 + base))
        << "trial " << trial;
  }
}

TEST(GainAccounting, EveryPrefixGainMatchesEvaluator) {
  // Property (P) in cost form: the first j entries of the selection are the
  // optimal j-set, and their gain prefix-sums equal evaluator deltas.
  Rng rng(626262);
  for (int trial = 0; trial < 15; ++trial) {
    SelectionInput input = RandomInput(rng, 16, 30, 3, 8);
    auto tree = PastryGainTree::FromInput(input);
    ASSERT_TRUE(tree.ok());
    const double base = EvaluatePastryCost(input, {});
    std::vector<uint64_t> chosen = tree->SelectAuxiliary();
    const auto& gains = tree->GainsAt(tree->trie().root());
    ASSERT_EQ(gains.size(), chosen.size());
    double gain_prefix = 0;
    std::vector<uint64_t> prefix;
    for (size_t j = 0; j < chosen.size(); ++j) {
      gain_prefix += gains[j].gain;
      prefix.push_back(chosen[j]);
      EXPECT_NEAR(base - gain_prefix, EvaluatePastryCost(input, prefix),
                  1e-9 * (1 + base))
          << "prefix length " << j + 1;
    }
  }
}

TEST(GainAccounting, GainsNonincreasingAtEveryVertex) {
  // Lemma 4.1 materialized: every cached gain list is sorted nonincreasing.
  Rng rng(737373);
  SelectionInput input = RandomInput(rng, 20, 80, 6, 10);
  auto tree = PastryGainTree::FromInput(input);
  ASSERT_TRUE(tree.ok());
  const trie::BinaryTrie& t = tree->trie();
  std::vector<int> stack{t.root()};
  while (!stack.empty()) {
    int v = stack.back();
    stack.pop_back();
    const auto& gains = tree->GainsAt(v);
    for (size_t i = 1; i < gains.size(); ++i) {
      EXPECT_GE(gains[i - 1].gain, gains[i].gain - 1e-12)
          << "vertex " << v << " entry " << i;
    }
    for (int b = 0; b < 2; ++b) {
      int c = t.Child(v, b);
      if (c != trie::BinaryTrie::kNil) stack.push_back(c);
    }
  }
}

TEST(GainAccounting, GainsNonnegative) {
  Rng rng(848484);
  for (int trial = 0; trial < 10; ++trial) {
    SelectionInput input = RandomInput(rng, 14, 40, 4, 12);
    auto tree = PastryGainTree::FromInput(input);
    ASSERT_TRUE(tree.ok());
    for (const GainEntry& e : tree->GainsAt(tree->trie().root())) {
      EXPECT_GE(e.gain, 0.0);
    }
  }
}

}  // namespace
}  // namespace peercache::auxsel
