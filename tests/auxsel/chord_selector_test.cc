#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "auxsel/chord_common.h"
#include "auxsel/chord_dp.h"
#include "auxsel/chord_fast.h"
#include "auxsel/selection_types.h"
#include "common/random.h"
#include "test_util.h"

namespace peercache::auxsel {
namespace {

using ::peercache::auxsel::testing::BruteForceBestCost;
using ::peercache::auxsel::testing::RandomInput;

TEST(ChordInstance, BuildsSortedShiftedSuccessors) {
  SelectionInput input;
  input.bits = 8;
  input.self_id = 200;
  input.peers = {{10, 1.0, -1}, {250, 2.0, -1}, {199, 3.0, -1}};
  input.core_ids = {250};
  auto inst_r = BuildChordInstance(input);
  ASSERT_TRUE(inst_r.ok()) << inst_r.status();
  const ChordInstance& inst = inst_r.value();
  ASSERT_EQ(inst.n, 3);
  // Shifted: 250 -> 50, 10 -> 66, 199 -> 255.
  EXPECT_EQ(inst.ids[1], 50u);
  EXPECT_EQ(inst.ids[2], 66u);
  EXPECT_EQ(inst.ids[3], 255u);
  EXPECT_TRUE(inst.is_core[1]);
  EXPECT_FALSE(inst.is_core[2]);
  EXPECT_EQ(inst.orig_id[3], 199u);
  // Candidate list excludes the core.
  ASSERT_EQ(inst.candidates.size(), 2u);
  EXPECT_EQ(inst.candidates[0], 2);
  EXPECT_EQ(inst.candidates[1], 3);
  // core_serve: successor 1 is a core (0); successor 2 served by core at 50:
  // bitlen(16) = 5; successor 3 served by core: bitlen(205) = 8.
  EXPECT_EQ(inst.core_serve[1], 0);
  EXPECT_EQ(inst.core_serve[2], 5);
  EXPECT_EQ(inst.core_serve[3], 8);
}

TEST(ChordInstance, SlowSAgainstHandComputed) {
  SelectionInput input;
  input.bits = 8;
  input.self_id = 0;
  input.peers = {{4, 1.0, -1}, {5, 2.0, -1}, {16, 4.0, -1}, {100, 8.0, -1}};
  auto inst_r = BuildChordInstance(input);
  ASSERT_TRUE(inst_r.ok());
  const ChordInstance& inst = inst_r.value();
  // s(1, 4): peers 5,16,100 served by pointer at 4 (no cores):
  //   bitlen(1)=1, bitlen(12)=4, bitlen(96)=7 -> 2*1 + 4*4 + 8*7 = 74.
  EXPECT_DOUBLE_EQ(inst.SlowS(1, 4), 74.0);
  // s(3, 4): peer 100 served by 16: bitlen(84)=7 -> 8*7 = 56.
  EXPECT_DOUBLE_EQ(inst.SlowS(3, 4), 56.0);
  EXPECT_DOUBLE_EQ(inst.SlowS(4, 4), 0.0);
}

TEST(ChordDp, MatchesBruteForceOnRandomInstances) {
  Rng rng(555001);
  for (int trial = 0; trial < 60; ++trial) {
    const int bits = 4 + static_cast<int>(rng.UniformU64(8));
    const int n = 1 + static_cast<int>(rng.UniformU64(10));
    const int cores = static_cast<int>(rng.UniformU64(3));
    const int k = static_cast<int>(rng.UniformU64(4));
    SelectionInput input = RandomInput(rng, bits, n, cores, k);
    double brute = BruteForceBestCost(input, EvaluateChordCost);
    auto sel = SelectChordDp(input);
    ASSERT_TRUE(sel.ok()) << sel.status();
    EXPECT_NEAR(sel->cost, brute, 1e-9 * (1 + brute))
        << "trial=" << trial << " n=" << n << " k=" << k << " bits=" << bits;
    EXPECT_NEAR(sel->cost, EvaluateChordCost(input, sel->chosen), 1e-9);
  }
}

TEST(ChordFast, MatchesNaiveDpOnRandomInstances) {
  Rng rng(909090);
  for (int trial = 0; trial < 120; ++trial) {
    const int bits = 4 + static_cast<int>(rng.UniformU64(28));
    const int n = 1 + static_cast<int>(rng.UniformU64(80));
    const int cores = static_cast<int>(rng.UniformU64(8));
    const int k = static_cast<int>(rng.UniformU64(10));
    SelectionInput input = RandomInput(rng, bits, n, cores, k);
    auto naive = SelectChordDp(input);
    auto fast = SelectChordFast(input);
    ASSERT_TRUE(naive.ok()) << naive.status();
    ASSERT_TRUE(fast.ok()) << fast.status();
    EXPECT_NEAR(fast->cost, naive->cost, 1e-9 * (1 + naive->cost))
        << "trial=" << trial << " n=" << n << " k=" << k << " bits=" << bits;
  }
}

TEST(ChordFast, LargerRandomizedSweep) {
  Rng rng(123321);
  for (int trial = 0; trial < 10; ++trial) {
    SelectionInput input = RandomInput(rng, 32, 300, 9, 12);
    auto naive = SelectChordDp(input);
    auto fast = SelectChordFast(input);
    ASSERT_TRUE(naive.ok());
    ASSERT_TRUE(fast.ok());
    EXPECT_NEAR(fast->cost, naive->cost, 1e-9 * (1 + naive->cost));
  }
}

TEST(ChordSelectors, ImmediateSuccessorClusterFavored) {
  // All frequency mass lives on three peers far around the ring; a single
  // pointer must land at the first of that cluster (it serves the others).
  SelectionInput input;
  input.bits = 16;
  input.self_id = 0;
  input.peers = {{40000, 50.0, -1}, {40001, 50.0, -1}, {40002, 50.0, -1},
                 {100, 0.0, -1},    {200, 0.0, -1}};
  input.k = 1;
  auto sel = SelectChordDp(input);
  ASSERT_TRUE(sel.ok());
  ASSERT_EQ(sel->chosen.size(), 1u);
  EXPECT_EQ(sel->chosen[0], 40000u);
  auto fast = SelectChordFast(input);
  ASSERT_TRUE(fast.ok());
  EXPECT_EQ(fast->chosen, sel->chosen);
}

TEST(ChordSelectors, CostMonotoneInK) {
  Rng rng(161616);
  SelectionInput input = RandomInput(rng, 24, 80, 6, 0);
  double prev = EvaluateChordCost(input, {});
  for (int k = 1; k <= 12; ++k) {
    input.k = k;
    auto sel = SelectChordFast(input);
    ASSERT_TRUE(sel.ok());
    EXPECT_LE(sel->cost, prev + 1e-9) << "k=" << k;
    prev = sel->cost;
  }
}

TEST(ChordSelectors, ChosenNeverContainsCores) {
  Rng rng(17);
  for (int trial = 0; trial < 20; ++trial) {
    SelectionInput input = RandomInput(rng, 16, 30, 5, 6);
    auto sel = SelectChordFast(input);
    ASSERT_TRUE(sel.ok());
    for (uint64_t id : sel->chosen) {
      EXPECT_TRUE(std::find(input.core_ids.begin(), input.core_ids.end(),
                            id) == input.core_ids.end())
          << "core chosen as auxiliary";
      EXPECT_NE(id, input.self_id);
    }
    // No duplicates.
    std::set<uint64_t> dedup(sel->chosen.begin(), sel->chosen.end());
    EXPECT_EQ(dedup.size(), sel->chosen.size());
  }
}

TEST(ChordSelectors, EmptyAndDegenerateInstances) {
  SelectionInput input;
  input.bits = 8;
  input.self_id = 7;
  input.k = 3;
  auto sel = SelectChordDp(input);
  ASSERT_TRUE(sel.ok());
  EXPECT_TRUE(sel->chosen.empty());
  EXPECT_EQ(sel->cost, 0.0);

  // Only cores, no observed peers: nothing to optimize.
  input.core_ids = {9, 10};
  sel = SelectChordFast(input);
  ASSERT_TRUE(sel.ok());
  EXPECT_TRUE(sel->chosen.empty());
  EXPECT_EQ(sel->cost, 0.0);
}

TEST(ChordSelectors, SelfInCoreListIsIgnored) {
  SelectionInput input;
  input.bits = 8;
  input.self_id = 7;
  input.peers = {{9, 3.0, -1}};
  input.core_ids = {7};  // degenerate but tolerated
  input.k = 1;
  auto sel = SelectChordFast(input);
  ASSERT_TRUE(sel.ok());
  ASSERT_EQ(sel->chosen.size(), 1u);
  EXPECT_EQ(sel->chosen[0], 9u);
}

TEST(ChordFast, ArgminMonotonicityHolds) {
  // Indirect check of the total-monotonicity assumption: on random
  // instances, the best last-pointer index for C_1(m) must be nondecreasing
  // in m (computed by brute scan over s).
  Rng rng(808);
  for (int trial = 0; trial < 20; ++trial) {
    SelectionInput input = RandomInput(rng, 12, 40, 3, 1);
    auto inst_r = BuildChordInstance(input);
    ASSERT_TRUE(inst_r.ok());
    const ChordInstance& inst = inst_r.value();
    int prev_arg = 0;
    for (int m = 1; m <= inst.n; ++m) {
      double best = std::numeric_limits<double>::infinity();
      int arg = 0;
      for (int j : inst.candidates) {
        if (j > m) break;
        double v = inst.B[static_cast<size_t>(j - 1)] + inst.SlowS(j, m);
        if (v < best) {
          best = v;
          arg = j;
        }
      }
      if (arg != 0) {
        EXPECT_GE(arg, prev_arg) << "argmin not monotone at m=" << m;
        prev_arg = arg;
      }
    }
  }
}

}  // namespace
}  // namespace peercache::auxsel
