#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "auxsel/pastry_dp.h"
#include "auxsel/pastry_greedy.h"
#include "auxsel/selection_types.h"
#include "common/random.h"
#include "test_util.h"

namespace peercache::auxsel {
namespace {

using ::peercache::auxsel::testing::BruteForceBestCost;
using ::peercache::auxsel::testing::RandomInput;

TEST(PastryDp, EmptyInstance) {
  SelectionInput input;
  input.bits = 8;
  input.self_id = 3;
  input.k = 4;
  auto sel = SelectPastryDp(input);
  ASSERT_TRUE(sel.ok()) << sel.status();
  EXPECT_TRUE(sel->chosen.empty());
  EXPECT_EQ(sel->cost, 0.0);
}

TEST(PastryDp, SinglePeerIsChosen) {
  SelectionInput input;
  input.bits = 8;
  input.self_id = 0b00000000;
  input.peers = {{0b11110000, 5.0, -1}};
  input.k = 1;
  auto sel = SelectPastryDp(input);
  ASSERT_TRUE(sel.ok()) << sel.status();
  ASSERT_EQ(sel->chosen.size(), 1u);
  EXPECT_EQ(sel->chosen[0], 0b11110000u);
  // Chosen as a neighbor: distance 0, cost f * (1 + 0).
  EXPECT_DOUBLE_EQ(sel->cost, 5.0);
}

TEST(PastryDp, CoreNeighborIsNotChosen) {
  SelectionInput input;
  input.bits = 8;
  input.self_id = 0;
  input.peers = {{0b11110000, 5.0, -1}, {0b00001111, 1.0, -1}};
  input.core_ids = {0b11110000};
  input.k = 1;
  auto sel = SelectPastryDp(input);
  ASSERT_TRUE(sel.ok()) << sel.status();
  ASSERT_EQ(sel->chosen.size(), 1u);
  EXPECT_EQ(sel->chosen[0], 0b00001111u);
}

TEST(PastryDp, PrefersHighFrequencySubtree) {
  SelectionInput input;
  input.bits = 8;
  input.self_id = 0b00000000;
  // Two peers under a far prefix: one hot, one cold.
  input.peers = {{0b10000001, 100.0, -1}, {0b01000001, 1.0, -1}};
  input.k = 1;
  auto sel = SelectPastryDp(input);
  ASSERT_TRUE(sel.ok()) << sel.status();
  ASSERT_EQ(sel->chosen.size(), 1u);
  EXPECT_EQ(sel->chosen[0], 0b10000001u);
}

TEST(PastryDp, PointerHelpsWholeSubtree) {
  // A pointer into a subtree shortens routes for all peers that share the
  // prefix, not just the chosen one (the paper's key argument for pointer
  // caching over item caching).
  SelectionInput input;
  input.bits = 8;
  input.self_id = 0b00000000;
  input.peers = {{0b11100001, 10.0, -1}, {0b11100010, 10.0, -1}};
  input.k = 1;
  auto sel = SelectPastryDp(input);
  ASSERT_TRUE(sel.ok()) << sel.status();
  // Distance between the two peers is 8 - lcp = 8 - 6 = 2. Either pick
  // serves the other at cost f*(1+2); itself at f*1.
  EXPECT_DOUBLE_EQ(sel->cost, 10.0 * 1 + 10.0 * 3);
}

TEST(PastryDp, MatchesBruteForceOnRandomInstances) {
  Rng rng(20260708);
  for (int trial = 0; trial < 60; ++trial) {
    const int bits = 4 + static_cast<int>(rng.UniformU64(8));
    const int n = 1 + static_cast<int>(rng.UniformU64(10));
    const int cores = static_cast<int>(rng.UniformU64(3));
    const int k = static_cast<int>(rng.UniformU64(4));
    SelectionInput input = RandomInput(rng, bits, n, cores, k);
    double brute = BruteForceBestCost(input, EvaluatePastryCost);
    auto sel = SelectPastryDp(input);
    ASSERT_TRUE(sel.ok()) << sel.status();
    EXPECT_NEAR(sel->cost, brute, 1e-9 * (1 + brute))
        << "trial=" << trial << " n=" << n << " k=" << k << " bits=" << bits;
    // Reported cost must match an independent evaluation of the chosen set.
    EXPECT_NEAR(sel->cost, EvaluatePastryCost(input, sel->chosen), 1e-9);
  }
}

TEST(PastryGreedy, MatchesDpOnRandomInstances) {
  Rng rng(99123);
  for (int trial = 0; trial < 120; ++trial) {
    const int bits = 4 + static_cast<int>(rng.UniformU64(28));
    const int n = 1 + static_cast<int>(rng.UniformU64(60));
    const int cores = static_cast<int>(rng.UniformU64(6));
    const int k = static_cast<int>(rng.UniformU64(8));
    SelectionInput input = RandomInput(rng, bits, n, cores, k);
    auto dp = SelectPastryDp(input);
    auto greedy = SelectPastryGreedy(input);
    ASSERT_TRUE(dp.ok()) << dp.status();
    ASSERT_TRUE(greedy.ok()) << greedy.status();
    EXPECT_NEAR(greedy->cost, dp->cost, 1e-9 * (1 + dp->cost))
        << "trial=" << trial << " n=" << n << " k=" << k << " bits=" << bits;
  }
}

TEST(PastryGreedy, SelectionSizeIsMinOfKAndCandidates) {
  Rng rng(5);
  SelectionInput input = RandomInput(rng, 16, 6, 0, 10);
  auto sel = SelectPastryGreedy(input);
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(sel->chosen.size(), 6u);

  input.k = 3;
  sel = SelectPastryGreedy(input);
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(sel->chosen.size(), 3u);
}

TEST(PastryGreedy, NestingPropertyP) {
  // Paper property (P): the optimal j-1 set is contained in the optimal j
  // set. The greedy's root gain list realizes exactly this chain.
  Rng rng(777);
  for (int trial = 0; trial < 20; ++trial) {
    SelectionInput input = RandomInput(rng, 16, 30, 4, 8);
    std::set<uint64_t> previous;
    double prev_cost = EvaluatePastryCost(input, {});
    for (int k = 1; k <= 8; ++k) {
      SelectionInput in_k = input;
      in_k.k = k;
      auto sel = SelectPastryGreedy(in_k);
      ASSERT_TRUE(sel.ok());
      std::set<uint64_t> current(sel->chosen.begin(), sel->chosen.end());
      EXPECT_TRUE(std::includes(current.begin(), current.end(),
                                previous.begin(), previous.end()))
          << "k=" << k << " not a superset of k-1";
      EXPECT_LE(sel->cost, prev_cost + 1e-9) << "cost must be monotone in k";
      previous = std::move(current);
      prev_cost = sel->cost;
    }
  }
}

TEST(PastryGreedy, DiminishingReturns) {
  // Lemma 4.1: marginal gains are nonincreasing in k.
  Rng rng(4242);
  for (int trial = 0; trial < 20; ++trial) {
    SelectionInput input = RandomInput(rng, 12, 25, 2, 0);
    double prev_cost = EvaluatePastryCost(input, {});
    double prev_gain = std::numeric_limits<double>::infinity();
    for (int k = 1; k <= 10; ++k) {
      SelectionInput in_k = input;
      in_k.k = k;
      auto sel = SelectPastryGreedy(in_k);
      ASSERT_TRUE(sel.ok());
      double gain = prev_cost - sel->cost;
      EXPECT_LE(gain, prev_gain + 1e-9) << "k=" << k;
      prev_gain = gain;
      prev_cost = sel->cost;
    }
  }
}

TEST(PastryGreedy, ZipfLikeInstanceBeatsObliviousCost) {
  // Sanity: on a skewed instance the optimal set must contain the hottest
  // non-core peer.
  SelectionInput input;
  input.bits = 16;
  input.self_id = 0;
  Rng rng(31337);
  for (int i = 1; i <= 50; ++i) {
    input.peers.push_back(PeerFreq{
        rng.UniformU64(uint64_t{1} << 16) | 1u,  // avoid id 0 (self)
        1000.0 / (i * i), -1});
  }
  // Dedup ids defensively.
  std::sort(input.peers.begin(), input.peers.end(),
            [](const PeerFreq& a, const PeerFreq& b) { return a.id < b.id; });
  input.peers.erase(std::unique(input.peers.begin(), input.peers.end(),
                                [](const PeerFreq& a, const PeerFreq& b) {
                                  return a.id == b.id;
                                }),
                    input.peers.end());
  input.k = 5;
  auto sel = SelectPastryGreedy(input);
  ASSERT_TRUE(sel.ok());
  uint64_t hottest = 0;
  double best_f = -1;
  for (const PeerFreq& p : input.peers) {
    if (p.frequency > best_f) {
      best_f = p.frequency;
      hottest = p.id;
    }
  }
  EXPECT_TRUE(std::find(sel->chosen.begin(), sel->chosen.end(), hottest) !=
              sel->chosen.end());
}

TEST(PastrySelectors, RejectInvalidInput) {
  SelectionInput input;
  input.bits = 0;
  EXPECT_FALSE(SelectPastryDp(input).ok());
  EXPECT_FALSE(SelectPastryGreedy(input).ok());

  input.bits = 8;
  input.self_id = 1;
  input.peers = {{1, 1.0, -1}};  // self in peers
  EXPECT_EQ(SelectPastryDp(input).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(SelectPastryGreedy(input).status().code(),
            StatusCode::kInvalidArgument);

  input.peers = {{2, -1.0, -1}};  // negative frequency
  EXPECT_FALSE(SelectPastryGreedy(input).ok());

  input.peers = {{2, 1.0, -1}, {2, 2.0, -1}};  // duplicate
  EXPECT_FALSE(SelectPastryDp(input).ok());
}

TEST(PastrySelectors, KZeroReturnsEmpty) {
  Rng rng(8);
  SelectionInput input = RandomInput(rng, 16, 20, 3, 0);
  auto dp = SelectPastryDp(input);
  auto greedy = SelectPastryGreedy(input);
  ASSERT_TRUE(dp.ok());
  ASSERT_TRUE(greedy.ok());
  EXPECT_TRUE(dp->chosen.empty());
  EXPECT_TRUE(greedy->chosen.empty());
  EXPECT_DOUBLE_EQ(dp->cost, EvaluatePastryCost(input, {}));
  EXPECT_DOUBLE_EQ(greedy->cost, dp->cost);
}

}  // namespace
}  // namespace peercache::auxsel
