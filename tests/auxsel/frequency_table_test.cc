#include <gtest/gtest.h>

#include <algorithm>

#include "auxsel/frequency_table.h"
#include "common/random.h"
#include "common/zipf.h"

namespace peercache::auxsel {
namespace {

TEST(FrequencyTable, ExactModeCounts) {
  FrequencyTable table;
  table.Record(7);
  table.Record(7);
  table.Record(9, 3);
  EXPECT_EQ(table.distinct(), 2u);
  EXPECT_EQ(table.total(), 5u);
  auto snap = table.Snapshot(/*exclude_self=*/0);
  ASSERT_EQ(snap.size(), 2u);
  std::sort(snap.begin(), snap.end(),
            [](const PeerFreq& a, const PeerFreq& b) { return a.id < b.id; });
  EXPECT_EQ(snap[0].id, 7u);
  EXPECT_DOUBLE_EQ(snap[0].frequency, 2.0);
  EXPECT_EQ(snap[1].id, 9u);
  EXPECT_DOUBLE_EQ(snap[1].frequency, 3.0);
}

TEST(FrequencyTable, SnapshotExcludesSelf) {
  FrequencyTable table;
  table.Record(7);
  table.Record(8);
  auto snap = table.Snapshot(7);
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].id, 8u);
}

TEST(FrequencyTable, DecayHalvesCounts) {
  FrequencyTable table;
  table.Record(1, 8);
  table.Decay(0.5);
  auto snap = table.Snapshot(0);
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_DOUBLE_EQ(snap[0].frequency, 4.0);
}

TEST(FrequencyTable, ForgetRemovesPeer) {
  FrequencyTable table;
  table.Record(1);
  table.Record(2);
  EXPECT_TRUE(table.Forget(1)) << "exact mode truly removes";
  EXPECT_EQ(table.distinct(), 1u);
  EXPECT_TRUE(table.Forget(42)) << "untracked peer: nothing to pin";
}

TEST(FrequencyTable, BoundedForgetZeroesSlotAndReportsFallback) {
  FrequencyTable table(2);
  table.Record(1, 10);
  table.Record(2, 20);
  // Space-Saving cannot delete: Forget must say so, but the departed peer's
  // slot no longer pins — its weight drops to zero…
  EXPECT_FALSE(table.Forget(1));
  EXPECT_DOUBLE_EQ(table.ObservedWeight(1), 0.0);
  EXPECT_DOUBLE_EQ(table.ObservedWeight(2), 20.0);
  // …and the next unseen peer takes that slot with no inherited error
  // (before the fix, peer 3 would have evicted whichever entry had the
  // minimum count and inherited it as error).
  table.Record(3, 5);
  EXPECT_DOUBLE_EQ(table.ObservedWeight(3), 5.0);
  EXPECT_DOUBLE_EQ(table.ObservedWeight(1), 0.0);
  EXPECT_DOUBLE_EQ(table.ObservedWeight(2), 20.0);
}

TEST(FrequencyTable, ObservedWeightMatchesSnapshot) {
  FrequencyTable table;
  table.Record(5, 3);
  table.Record(6, 4);
  EXPECT_DOUBLE_EQ(table.ObservedWeight(5), 3.0);
  EXPECT_DOUBLE_EQ(table.ObservedWeight(6), 4.0);
  EXPECT_DOUBLE_EQ(table.ObservedWeight(7), 0.0);
}

TEST(FrequencyTable, DrainDirtyReturnsSortedChangesOnce) {
  FrequencyTable table;
  table.Record(9);
  table.Record(3);
  table.Record(9);
  std::vector<uint64_t> dirty = table.DrainDirty();
  EXPECT_EQ(dirty, (std::vector<uint64_t>{3, 9}));
  EXPECT_TRUE(table.DrainDirty().empty()) << "drain clears the set";
  table.Forget(3);
  EXPECT_EQ(table.DrainDirty(), (std::vector<uint64_t>{3}))
      << "forget is a weight change too";
}

TEST(FrequencyTable, BoundedModeKeepsHeavyHitters) {
  // A zipf stream through a capacity-20 table must retain the hottest peers.
  FrequencyTable table(20);
  Rng rng(321);
  ZipfDistribution zipf(1000, 1.2);
  for (int i = 0; i < 50000; ++i) {
    table.Record(static_cast<uint64_t>(zipf.Sample(rng)));
  }
  EXPECT_LE(table.distinct(), 20u);
  auto snap = table.Snapshot(0);
  std::vector<uint64_t> kept;
  for (const auto& p : snap) kept.push_back(p.id);
  for (uint64_t hot = 1; hot <= 5; ++hot) {
    EXPECT_TRUE(std::find(kept.begin(), kept.end(), hot) != kept.end())
        << "hot rank " << hot << " evicted";
  }
}

TEST(FrequencyTable, DrainAfterForgetEmitsAbsoluteWeights) {
  // Regression: a maintainer that drains after Forget must see the peer's
  // post-Forget absolute weight, not the stale pre-Forget count. Before the
  // fix, sketch mode left the departed peer's count-min mass in place, so a
  // re-recorded peer reported old + new instead of new.
  FreqSketchParams sketch;
  sketch.top_capacity = 8;
  sketch.cm_width = 64;
  sketch.cm_depth = 4;
  FrequencyTable tables[] = {FrequencyTable(), FrequencyTable(8),
                             FrequencyTable(0, sketch)};
  const char* labels[] = {"exact", "bounded", "sketch"};
  for (int m = 0; m < 3; ++m) {
    FrequencyTable& table = tables[m];
    SCOPED_TRACE(labels[m]);
    table.Record(7, 5);
    (void)table.DrainDirty();
    table.Forget(7);
    table.Record(7, 3);
    std::vector<uint64_t> dirty = table.DrainDirty();
    EXPECT_TRUE(std::find(dirty.begin(), dirty.end(), 7u) != dirty.end())
        << "re-recorded peer must be dirty";
    EXPECT_DOUBLE_EQ(table.ObservedWeight(7), 3.0)
        << "weight after Forget+Record must be absolute, not 5+3";
  }
}

TEST(FrequencyTable, EvictionMarksVictimDirty) {
  // When a bounded/sketch summary evicts peer A to admit peer B, a
  // subsequent drain must include A (its reported weight changed to zero),
  // or the maintainer would keep serving A's stale weight forever.
  FrequencyTable bounded(1);
  bounded.Record(1, 5);
  (void)bounded.DrainDirty();
  bounded.Record(2, 10);
  EXPECT_EQ(bounded.DrainDirty(), (std::vector<uint64_t>{1, 2}));
  EXPECT_DOUBLE_EQ(bounded.ObservedWeight(1), 0.0);

  FreqSketchParams sketch;
  sketch.top_capacity = 1;
  sketch.cm_width = 64;
  sketch.cm_depth = 4;
  FrequencyTable table(0, sketch);
  table.Record(1, 5);
  (void)table.DrainDirty();
  table.Record(2, 10);
  EXPECT_EQ(table.DrainDirty(), (std::vector<uint64_t>{1, 2}));
}

TEST(FrequencyTable, SketchModeReportsMemoryBudget) {
  FreqSketchParams sketch;
  sketch.top_capacity = 42;
  sketch.cm_width = 16;
  sketch.cm_depth = 2;
  FrequencyTable table(0, sketch);
  EXPECT_TRUE(table.sketch_enabled());
  // 64 fixed + 42 top slots x 24 B + 16x2 counters x 4 B = 1200: the
  // headline tier of bench/freq_sketch.
  EXPECT_EQ(table.SummaryMemoryBytes(), 1200u);
  // Exact-mode memory grows with distinct peers instead.
  FrequencyTable exact;
  exact.Record(1);
  exact.Record(2);
  EXPECT_EQ(exact.SummaryMemoryBytes(),
            FrequencyTable::kTableOverheadBytes +
                2 * FrequencyTable::kExactEntryBytes);
}

TEST(FrequencyTable, ClearResets) {
  FrequencyTable table(4);
  table.Record(1);
  table.Clear();
  EXPECT_EQ(table.distinct(), 0u);
  EXPECT_EQ(table.total(), 0u);
}

}  // namespace
}  // namespace peercache::auxsel
