#ifndef PEERCACHE_TESTS_AUXSEL_MAINTAINER_TEST_UTIL_H_
#define PEERCACHE_TESTS_AUXSEL_MAINTAINER_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "auxsel/maintainer.h"
#include "auxsel/selection_types.h"
#include "common/random.h"

namespace peercache::auxsel::testing {

/// Differential replay harness for Maintainer backends: applies `steps`
/// randomized join/leave/frequency-delta/core-set mutations to `m` and,
/// after EVERY step, asserts that the incremental `Reselect()` cost equals
/// both (a) a from-scratch selector run on the maintainer's logical state
/// and (b) the reference Eq. 1 evaluation of the incrementally chosen set —
/// so neither the delta bookkeeping nor the incremental cost pricing can
/// drift from the one-shot selectors.
///
/// `fresh` is the one-shot selector (SelectPastryGreedy / SelectChordFast);
/// `eval` the reference evaluator (EvaluatePastryCost / EvaluateChordCost).
template <Maintainer M, typename FreshSelect, typename EvalCost>
void ReplayDeltasAgainstFresh(M& m, FreshSelect fresh, EvalCost eval,
                              Rng& rng, int steps) {
  const uint64_t bound = uint64_t{1} << m.bits();
  std::vector<uint64_t> seen;  // ids ever touched (some may have left)
  for (int step = 0; step < steps; ++step) {
    const int op = static_cast<int>(rng.UniformU64(4));
    if (op == 0 || seen.size() < 3) {
      // Join (or re-weight, when the id is already tracked).
      const uint64_t id = rng.UniformU64(bound);
      if (id == m.self_id()) continue;
      const double f = static_cast<double>(rng.UniformU64(500)) + 1.0;
      ASSERT_TRUE(m.OnPeerJoin(id, f).ok());
      seen.push_back(id);
    } else if (op == 1) {
      // Leave (possibly of an id that already left: must be a no-op).
      const uint64_t id = seen[rng.UniformU64(seen.size())];
      ASSERT_TRUE(m.OnPeerLeave(id).ok());
    } else if (op == 2) {
      // Frequency delta; 0 exercises the bounded-Forget fallback path.
      const uint64_t id = seen[rng.UniformU64(seen.size())];
      const double f = static_cast<double>(rng.UniformU64(500));
      ASSERT_TRUE(m.OnFrequencyDelta(id, f).ok());
    } else {
      // Replace the core set with a random draw over seen + fresh ids.
      std::vector<uint64_t> cores;
      const size_t n_cores = rng.UniformU64(5);
      for (size_t i = 0; i < n_cores; ++i) {
        cores.push_back(rng.Bernoulli(0.3)
                            ? rng.UniformU64(bound)  // possibly never seen
                            : seen[rng.UniformU64(seen.size())]);
      }
      auto changed = m.SetCores(cores);
      ASSERT_TRUE(changed.ok()) << changed.status();
    }

    auto inc = m.Reselect();
    ASSERT_TRUE(inc.ok()) << inc.status() << " at step " << step;
    const SelectionInput state = m.FreshInput();
    auto ref = fresh(state);
    ASSERT_TRUE(ref.ok()) << ref.status() << " at step " << step;
    const double tol = 1e-9 * (1.0 + std::abs(ref->cost));
    EXPECT_NEAR(inc->cost, ref->cost, tol) << "fresh mismatch, step " << step;
    EXPECT_NEAR(inc->cost, eval(state, inc->chosen), tol)
        << "Eq. 1 pricing mismatch, step " << step;
  }
}

}  // namespace peercache::auxsel::testing

#endif  // PEERCACHE_TESTS_AUXSEL_MAINTAINER_TEST_UTIL_H_
