// Adversarially structured instances: id patterns and frequency profiles
// designed to stress the selectors' structural assumptions (the concave-DP
// argmin monotonicity in chord_fast, the trie edge-credit bookkeeping in
// pastry_greedy, and tie handling everywhere).

#include <gtest/gtest.h>

#include <vector>

#include "auxsel/chord_dp.h"
#include "auxsel/chord_fast.h"
#include "auxsel/pastry_dp.h"
#include "auxsel/pastry_greedy.h"
#include "auxsel/selection_types.h"
#include "common/bits.h"
#include "common/random.h"

namespace peercache::auxsel {
namespace {

void ExpectAllSelectorsAgree(const SelectionInput& input,
                             const char* description) {
  auto chord_naive = SelectChordDp(input);
  auto chord_fast = SelectChordFast(input);
  ASSERT_TRUE(chord_naive.ok()) << description << ": " << chord_naive.status();
  ASSERT_TRUE(chord_fast.ok()) << description << ": " << chord_fast.status();
  EXPECT_NEAR(chord_fast->cost, chord_naive->cost,
              1e-9 * (1 + chord_naive->cost))
      << description;

  auto pastry_dp = SelectPastryDp(input);
  auto pastry_greedy = SelectPastryGreedy(input);
  ASSERT_TRUE(pastry_dp.ok()) << description;
  ASSERT_TRUE(pastry_greedy.ok()) << description;
  EXPECT_NEAR(pastry_greedy->cost, pastry_dp->cost,
              1e-9 * (1 + pastry_dp->cost))
      << description;
}

TEST(Adversarial, TightClusterOfIds) {
  // All peers packed into one tiny arc right after the selecting node.
  SelectionInput input;
  input.bits = 32;
  input.self_id = 0;
  for (uint64_t i = 1; i <= 60; ++i) {
    input.peers.push_back({i, static_cast<double>(i % 7) + 0.5, -1});
  }
  input.k = 6;
  ExpectAllSelectorsAgree(input, "tight cluster");
}

TEST(Adversarial, ClusterDiametricallyOpposite) {
  SelectionInput input;
  input.bits = 32;
  input.self_id = 0;
  const uint64_t base = uint64_t{1} << 31;
  for (uint64_t i = 0; i < 50; ++i) {
    input.peers.push_back({base + i * 3, 1.0 + static_cast<double>(i), -1});
  }
  input.k = 5;
  ExpectAllSelectorsAgree(input, "opposite cluster");
}

TEST(Adversarial, GeometricIdSpacing) {
  // One peer per distance octave: exactly the finger structure.
  SelectionInput input;
  input.bits = 32;
  input.self_id = 0;
  for (int i = 1; i < 32; ++i) {
    input.peers.push_back(
        {uint64_t{1} << i, static_cast<double>(32 - i), -1});
  }
  input.k = 4;
  ExpectAllSelectorsAgree(input, "geometric spacing");
}

TEST(Adversarial, PowerOfTwoBoundaryStraddle) {
  // Pairs of ids straddling power-of-two boundaries: worst case for
  // prefix-based distance (lcp 0 between numerically adjacent ids).
  SelectionInput input;
  input.bits = 16;
  input.self_id = 3;
  for (int i = 8; i <= 14; ++i) {
    const uint64_t p = uint64_t{1} << i;
    input.peers.push_back({p - 1, 10.0, -1});
    input.peers.push_back({p, 10.0, -1});
  }
  input.k = 5;
  ExpectAllSelectorsAgree(input, "boundary straddle");
}

TEST(Adversarial, AllFrequenciesEqual) {
  // Total tie: any k-subset of a symmetric instance may be optimal; the
  // selectors must still agree on the optimal COST.
  SelectionInput input;
  input.bits = 16;
  input.self_id = 9;
  Rng rng(515);
  for (uint64_t id : rng.SampleDistinct(uint64_t{1} << 16, 40)) {
    if (id == input.self_id) continue;
    input.peers.push_back({id, 1.0, -1});
  }
  input.k = 7;
  ExpectAllSelectorsAgree(input, "all equal frequencies");
}

TEST(Adversarial, AllFrequenciesZero) {
  SelectionInput input;
  input.bits = 16;
  input.self_id = 9;
  Rng rng(616);
  for (uint64_t id : rng.SampleDistinct(uint64_t{1} << 16, 25)) {
    if (id == input.self_id) continue;
    input.peers.push_back({id, 0.0, -1});
  }
  input.k = 4;
  ExpectAllSelectorsAgree(input, "all zero frequencies");
  auto sel = SelectChordFast(input);
  ASSERT_TRUE(sel.ok());
  EXPECT_DOUBLE_EQ(sel->cost, 0.0);
}

TEST(Adversarial, SingleDominantPeer) {
  SelectionInput input;
  input.bits = 24;
  input.self_id = 0;
  Rng rng(717);
  auto ids = rng.SampleDistinct(uint64_t{1} << 24, 30);
  for (size_t i = 0; i < ids.size(); ++i) {
    if (ids[i] == 0) continue;
    input.peers.push_back({ids[i], i == 0 ? 1e9 : 1e-6, -1});
  }
  input.k = 1;
  auto chord = SelectChordFast(input);
  auto pastry = SelectPastryGreedy(input);
  ASSERT_TRUE(chord.ok() && pastry.ok());
  // Both must spend their single pointer on (or before, for Chord, at) the
  // hot peer so that it is served at distance 0.
  ASSERT_EQ(chord->chosen.size(), 1u);
  ASSERT_EQ(pastry->chosen.size(), 1u);
  EXPECT_EQ(pastry->chosen[0], input.peers[0].id);
  ExpectAllSelectorsAgree(input, "single dominant");
}

TEST(Adversarial, CoresShadowEverything) {
  // Every peer is within one hop of a core: auxiliary pointers can still
  // only help by zeroing distances; selectors must agree and never crash.
  SelectionInput input;
  input.bits = 16;
  input.self_id = 0;
  for (uint64_t i = 0; i < 20; ++i) {
    const uint64_t base = 1000 * (i + 1);
    input.core_ids.push_back(base);
    input.peers.push_back({base + 1, 5.0, -1});
  }
  input.k = 6;
  ExpectAllSelectorsAgree(input, "cores shadow");
}

TEST(Adversarial, MaximalKTakesAllCandidates) {
  SelectionInput input;
  input.bits = 16;
  input.self_id = 0;
  Rng rng(818);
  for (uint64_t id : rng.SampleDistinct(uint64_t{1} << 16, 15)) {
    if (id == 0) continue;
    input.peers.push_back({id, 2.0, -1});
  }
  input.k = 1000;
  auto chord = SelectChordFast(input);
  auto pastry = SelectPastryGreedy(input);
  ASSERT_TRUE(chord.ok() && pastry.ok());
  EXPECT_EQ(chord->chosen.size(), input.peers.size());
  EXPECT_EQ(pastry->chosen.size(), input.peers.size());
  // Everything is a neighbor: cost collapses to Σ f_v · 1.
  double total = 0;
  for (const auto& p : input.peers) total += p.frequency;
  EXPECT_DOUBLE_EQ(chord->cost, total);
  EXPECT_DOUBLE_EQ(pastry->cost, total);
}

TEST(Adversarial, OneBitIdSpace) {
  SelectionInput input;
  input.bits = 1;
  input.self_id = 0;
  input.peers = {{1, 3.0, -1}};
  input.k = 1;
  ExpectAllSelectorsAgree(input, "one-bit space");
  auto sel = SelectPastryGreedy(input);
  ASSERT_TRUE(sel.ok());
  EXPECT_DOUBLE_EQ(sel->cost, 3.0);
}

TEST(Adversarial, RandomizedClusterMixtures) {
  // Mixtures of dense clusters and isolated ids with heavy-tailed weights.
  Rng rng(919);
  for (int trial = 0; trial < 25; ++trial) {
    SelectionInput input;
    input.bits = 20;
    input.self_id = rng.UniformU64(uint64_t{1} << 20);
    const int clusters = 1 + static_cast<int>(rng.UniformU64(4));
    for (int c = 0; c < clusters; ++c) {
      uint64_t base = rng.UniformU64(uint64_t{1} << 20);
      int size = 1 + static_cast<int>(rng.UniformU64(12));
      for (int i = 0; i < size; ++i) {
        uint64_t id = (base + static_cast<uint64_t>(i)) & LowBitMask(20);
        if (id == input.self_id) continue;
        bool dup = false;
        for (const auto& p : input.peers) dup |= (p.id == id);
        if (dup) continue;
        double f = rng.Bernoulli(0.2) ? 1e6 : rng.UniformDouble();
        input.peers.push_back({id, f, -1});
      }
    }
    if (input.peers.empty()) continue;
    input.k = 1 + static_cast<int>(rng.UniformU64(6));
    ExpectAllSelectorsAgree(input, "cluster mixture");
  }
}

}  // namespace
}  // namespace peercache::auxsel
