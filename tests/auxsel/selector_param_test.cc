// Parameterized cross-validation sweeps over the whole selector family:
// for every (bits, n, cores, k) cell, on several random instances,
//   * Pastry greedy cost == Pastry DP cost (both claimed optimal),
//   * Chord fast cost == Chord naive DP cost,
//   * reported costs match independent Eq. 1 evaluation,
//   * chosen sets are valid (size, no cores, no self, no duplicates).

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <tuple>

#include "auxsel/chord_dp.h"
#include "auxsel/chord_fast.h"
#include "auxsel/pastry_dp.h"
#include "auxsel/pastry_greedy.h"
#include "auxsel/selection_types.h"
#include "common/random.h"
#include "test_util.h"

namespace peercache::auxsel {
namespace {

using ::peercache::auxsel::testing::RandomInput;

struct Cell {
  int bits;
  int n;
  int cores;
  int k;
};

void PrintTo(const Cell& c, std::ostream* os) {
  *os << "bits" << c.bits << "_n" << c.n << "_c" << c.cores << "_k" << c.k;
}

class SelectorSweep : public ::testing::TestWithParam<Cell> {
 protected:
  static constexpr int kInstancesPerCell = 8;

  SelectionInput MakeInstance(int instance) {
    const Cell& c = GetParam();
    Rng rng(0x5eed0000u + static_cast<uint64_t>(instance) * 7919u +
            static_cast<uint64_t>(c.bits * 131 + c.n * 17 + c.k));
    return RandomInput(rng, c.bits, c.n, c.cores, c.k);
  }

  static void CheckChosenValid(const SelectionInput& input,
                               const Selection& sel) {
    EXPECT_LE(static_cast<int>(sel.chosen.size()), input.k);
    std::set<uint64_t> seen;
    for (uint64_t id : sel.chosen) {
      EXPECT_NE(id, input.self_id);
      EXPECT_TRUE(seen.insert(id).second) << "duplicate choice";
      EXPECT_TRUE(std::find(input.core_ids.begin(), input.core_ids.end(),
                            id) == input.core_ids.end())
          << "core chosen as auxiliary";
      // Chosen ids must come from V.
      bool in_v = false;
      for (const PeerFreq& p : input.peers) in_v |= (p.id == id);
      EXPECT_TRUE(in_v) << "choice outside V";
    }
  }
};

TEST_P(SelectorSweep, PastryGreedyMatchesDp) {
  for (int i = 0; i < kInstancesPerCell; ++i) {
    SelectionInput input = MakeInstance(i);
    auto dp = SelectPastryDp(input);
    auto greedy = SelectPastryGreedy(input);
    ASSERT_TRUE(dp.ok()) << dp.status();
    ASSERT_TRUE(greedy.ok()) << greedy.status();
    EXPECT_NEAR(greedy->cost, dp->cost, 1e-9 * (1 + dp->cost))
        << "instance " << i;
    EXPECT_NEAR(dp->cost, EvaluatePastryCost(input, dp->chosen), 1e-9);
    EXPECT_NEAR(greedy->cost, EvaluatePastryCost(input, greedy->chosen),
                1e-9);
    CheckChosenValid(input, *dp);
    CheckChosenValid(input, *greedy);
  }
}

TEST_P(SelectorSweep, ChordFastMatchesNaiveDp) {
  for (int i = 0; i < kInstancesPerCell; ++i) {
    SelectionInput input = MakeInstance(i);
    auto naive = SelectChordDp(input);
    auto fast = SelectChordFast(input);
    ASSERT_TRUE(naive.ok()) << naive.status();
    ASSERT_TRUE(fast.ok()) << fast.status();
    EXPECT_NEAR(fast->cost, naive->cost, 1e-9 * (1 + naive->cost))
        << "instance " << i;
    EXPECT_NEAR(naive->cost, EvaluateChordCost(input, naive->chosen), 1e-9);
    EXPECT_NEAR(fast->cost, EvaluateChordCost(input, fast->chosen), 1e-9);
    CheckChosenValid(input, *naive);
    CheckChosenValid(input, *fast);
  }
}

TEST_P(SelectorSweep, SelectionNeverWorseThanNoAuxiliaries) {
  for (int i = 0; i < kInstancesPerCell; ++i) {
    SelectionInput input = MakeInstance(i);
    const double base_pastry = EvaluatePastryCost(input, {});
    const double base_chord = EvaluateChordCost(input, {});
    auto pastry = SelectPastryGreedy(input);
    auto chord = SelectChordFast(input);
    ASSERT_TRUE(pastry.ok() && chord.ok());
    EXPECT_LE(pastry->cost, base_pastry + 1e-9);
    EXPECT_LE(chord->cost, base_chord + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SelectorSweep,
    ::testing::Values(
        // Degenerate and tiny spaces.
        Cell{4, 3, 0, 1}, Cell{4, 8, 2, 2}, Cell{6, 20, 3, 4},
        // Typical mid sizes across id widths.
        Cell{12, 40, 4, 6}, Cell{16, 64, 6, 8}, Cell{24, 100, 8, 10},
        // Full-width ids (the experiments' 32-bit space and beyond).
        Cell{32, 150, 10, 12}, Cell{48, 80, 5, 16}, Cell{64, 60, 4, 8},
        // k larger than the candidate pool; k == 0.
        Cell{16, 10, 2, 30}, Cell{16, 30, 3, 0},
        // Core-heavy instance (most of V already neighbors).
        Cell{16, 20, 18, 5}),
    [](const ::testing::TestParamInfo<Cell>& info) {
      return "bits" + std::to_string(info.param.bits) + "_n" +
             std::to_string(info.param.n) + "_c" +
             std::to_string(info.param.cores) + "_k" +
             std::to_string(info.param.k);
    });

}  // namespace
}  // namespace peercache::auxsel
