// Differential tests for the persistent Chord maintainer: randomized delta
// streams must stay cost-equal to a fresh SelectChordFast at every step,
// and the jump-table reuse tiers (cached / weight-refresh / full rebuild)
// must each produce the same selection as building from scratch.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "auxsel/chord_fast.h"
#include "auxsel/chord_maintainer.h"
#include "auxsel/selection_types.h"
#include "common/random.h"
#include "maintainer_test_util.h"
#include "test_util.h"

namespace peercache::auxsel {
namespace {

using ::peercache::auxsel::testing::RandomInput;
using ::peercache::auxsel::testing::ReplayDeltasAgainstFresh;

TEST(ChordMaintainer, RandomDeltaStreamMatchesFreshSelect) {
  Rng rng(0xc0de01);
  ChordAuxMaintainer m(/*bits=*/12, /*k=*/4, /*self_id=*/99);
  ReplayDeltasAgainstFresh(m, SelectChordFast, EvaluateChordCost, rng,
                           /*steps=*/250);
}

TEST(ChordMaintainer, SecondSeedAndLargerBudget) {
  Rng rng(0xc0de02);
  ChordAuxMaintainer m(/*bits=*/16, /*k=*/8, /*self_id=*/0x1234);
  ReplayDeltasAgainstFresh(m, SelectChordFast, EvaluateChordCost, rng,
                           /*steps=*/200);
}

TEST(ChordMaintainer, FrequencyOnlyDeltasRideTheWeightRefreshTier) {
  Rng rng(0xc0de03);
  SelectionInput input = RandomInput(rng, /*bits=*/14, /*n_peers=*/60,
                                     /*n_cores=*/8, /*k=*/5);
  ChordAuxMaintainer m(input.bits, input.k, input.self_id);
  ASSERT_TRUE(m.SetCores(input.core_ids).ok());
  for (const PeerFreq& p : input.peers) {
    if (p.frequency > 0.0) {
      ASSERT_TRUE(m.OnPeerJoin(p.id, p.frequency).ok());
    }
  }
  ASSERT_TRUE(m.Reselect().ok());
  ASSERT_FALSE(m.structure_dirty());

  // Re-weight existing peers only: the ring geometry must survive, and the
  // refreshed plan must match a from-scratch build after every round.
  const SelectionInput base = m.FreshInput();
  for (int round = 0; round < 10; ++round) {
    for (const PeerFreq& p : base.peers) {
      const double f = static_cast<double>(rng.UniformU64(1000)) + 1.0;
      ASSERT_TRUE(m.OnFrequencyDelta(p.id, f).ok());
    }
    ASSERT_FALSE(m.structure_dirty())
        << "re-weighting tracked peers must not invalidate the ring";
    auto inc = m.Reselect();
    ASSERT_TRUE(inc.ok());
    auto ref = SelectChordFast(m.FreshInput());
    ASSERT_TRUE(ref.ok());
    EXPECT_NEAR(inc->cost, ref->cost, 1e-9 * (1.0 + ref->cost))
        << "round " << round;
  }
}

TEST(ChordMaintainer, NoDeltasReturnsCachedSelection) {
  Rng rng(0xc0de04);
  SelectionInput input =
      RandomInput(rng, /*bits=*/10, /*n_peers=*/25, /*n_cores=*/4, /*k=*/3);
  ChordAuxMaintainer m(input.bits, input.k, input.self_id);
  ASSERT_TRUE(m.SetCores(input.core_ids).ok());
  for (const PeerFreq& p : input.peers) {
    if (p.frequency > 0.0) {
      ASSERT_TRUE(m.OnPeerJoin(p.id, p.frequency).ok());
    }
  }
  auto first = m.Reselect();
  ASSERT_TRUE(first.ok());
  auto second = m.Reselect();
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->chosen, second->chosen);
  EXPECT_EQ(first->cost, second->cost);

  // Idempotent deltas (same absolute values) must not change the result.
  for (const PeerFreq& p : input.peers) {
    if (p.frequency > 0.0) {
      ASSERT_TRUE(m.OnFrequencyDelta(p.id, p.frequency).ok());
    }
  }
  EXPECT_FALSE(m.structure_dirty());
  auto third = m.Reselect();
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(first->chosen, third->chosen);
}

TEST(ChordMaintainer, DepartedCoreStaysUntilSetCoresDropsIt) {
  ChordAuxMaintainer m(/*bits=*/8, /*k=*/2, /*self_id=*/0);
  ASSERT_TRUE(m.SetCores({64, 128}).ok());
  ASSERT_TRUE(m.OnPeerJoin(10, 5.0).ok());
  ASSERT_TRUE(m.OnPeerJoin(64, 3.0).ok());  // core with observed traffic
  ASSERT_TRUE(m.Reselect().ok());

  // The core leaves: its frequency is dropped but it remains a successor.
  ASSERT_TRUE(m.OnPeerLeave(64).ok());
  EXPECT_FALSE(m.structure_dirty()) << "core departure only moves weight";
  SelectionInput state = m.FreshInput();
  EXPECT_EQ(state.core_ids, (std::vector<uint64_t>{64, 128}));
  ASSERT_EQ(state.peers.size(), 1u);
  EXPECT_EQ(state.peers[0].id, 10u);

  // Stabilization catches up: now the ring itself changes.
  auto changed = m.SetCores({128});
  ASSERT_TRUE(changed.ok());
  EXPECT_EQ(changed.value(), 1u);
  EXPECT_TRUE(m.structure_dirty());
  auto inc = m.Reselect();
  ASSERT_TRUE(inc.ok());
  auto ref = SelectChordFast(m.FreshInput());
  ASSERT_TRUE(ref.ok());
  EXPECT_NEAR(inc->cost, ref->cost, 1e-12);
}

TEST(ChordMaintainer, EmptyStateSelectsNothing) {
  ChordAuxMaintainer m(/*bits=*/8, /*k=*/3, /*self_id=*/7);
  auto sel = m.Reselect();
  ASSERT_TRUE(sel.ok()) << sel.status();
  EXPECT_TRUE(sel->chosen.empty());
  EXPECT_EQ(sel->cost, 0.0);
  EXPECT_EQ(m.total_frequency(), 0.0);
}

TEST(ChordFastPlanRefresh, MatchesRebuildOnReweightedInput) {
  Rng rng(0xc0de05);
  for (int trial = 0; trial < 20; ++trial) {
    SelectionInput input = RandomInput(rng, /*bits=*/12, /*n_peers=*/40,
                                       /*n_cores=*/6, /*k=*/4);
    // The refresh contract requires candidates to keep positive frequency.
    for (PeerFreq& p : input.peers) {
      if (p.frequency <= 0.0) p.frequency = 1.0;
    }
    auto plan_r = ChordFastPlan::Build(input);
    ASSERT_TRUE(plan_r.ok()) << plan_r.status();
    ChordFastPlan plan = std::move(plan_r).value();

    for (PeerFreq& p : input.peers) {
      p.frequency = static_cast<double>(rng.UniformU64(1000)) + 1.0;
    }
    ASSERT_TRUE(plan.RefreshWeights(input).ok());
    auto refreshed = plan.Solve(input);
    auto rebuilt = SelectChordFast(input);
    ASSERT_TRUE(refreshed.ok() && rebuilt.ok());
    EXPECT_NEAR(refreshed->cost, rebuilt->cost,
                1e-9 * (1.0 + rebuilt->cost))
        << "trial " << trial;
    EXPECT_EQ(refreshed->chosen, rebuilt->chosen) << "trial " << trial;
  }
}

TEST(ChordFastPlanRefresh, RejectsMembershipDrift) {
  Rng rng(0xc0de06);
  SelectionInput input =
      RandomInput(rng, /*bits=*/10, /*n_peers=*/20, /*n_cores=*/3, /*k=*/3);
  for (PeerFreq& p : input.peers) {
    if (p.frequency <= 0.0) p.frequency = 1.0;
  }
  auto plan_r = ChordFastPlan::Build(input);
  ASSERT_TRUE(plan_r.ok());
  ChordFastPlan plan = std::move(plan_r).value();

  // Drop a non-core peer: its successor slot becomes underivable. (A core
  // peer would legitimately survive as a zero-frequency successor.)
  SelectionInput shrunk = input;
  for (size_t i = 0; i < shrunk.peers.size(); ++i) {
    if (std::find(shrunk.core_ids.begin(), shrunk.core_ids.end(),
                  shrunk.peers[i].id) == shrunk.core_ids.end()) {
      shrunk.peers.erase(shrunk.peers.begin() + static_cast<long>(i));
      break;
    }
  }
  ASSERT_LT(shrunk.peers.size(), input.peers.size());
  EXPECT_EQ(plan.RefreshWeights(shrunk).code(), StatusCode::kInvalidArgument);

  SelectionInput grown = input;
  uint64_t fresh_id = (input.self_id + 1) & ((uint64_t{1} << 10) - 1);
  while (std::any_of(input.peers.begin(), input.peers.end(),
                     [&](const PeerFreq& p) { return p.id == fresh_id; }) ||
         std::find(input.core_ids.begin(), input.core_ids.end(), fresh_id) !=
             input.core_ids.end() ||
         fresh_id == input.self_id) {
    fresh_id = (fresh_id + 1) & ((uint64_t{1} << 10) - 1);
  }
  grown.peers.push_back(PeerFreq{fresh_id, 2.0, -1});
  EXPECT_EQ(plan.RefreshWeights(grown).code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace peercache::auxsel
