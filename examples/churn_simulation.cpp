// Churn-intensive Chord simulation (paper Sec. VI-C): nodes crash and
// rejoin with exponential 900 s mean stays while queries flow at 4/s;
// stabilization runs every 25 s and auxiliary selection every 62.5 s.
//
//   $ ./churn_simulation [n] [k]
//
// Prints the three-way comparison (no auxiliaries / frequency-oblivious /
// optimal) under identical churn and query sequences.

#include <cstdio>
#include <cstdlib>

#include "experiments/generic_experiment.h"

using namespace peercache::experiments;

int main(int argc, char** argv) {
  ExperimentConfig cfg;
  cfg.n_nodes = argc > 1 ? std::atoi(argv[1]) : 256;
  cfg.k = argc > 2 ? std::atoi(argv[2]) : 8;
  cfg.alpha = 1.2;
  cfg.n_items = static_cast<size_t>(cfg.n_nodes);
  cfg.n_popularity_lists = 5;

  ChurnConfig churn;  // the paper's parameters
  churn.warmup_s = 2400;
  churn.measure_s = 2400;

  std::printf(
      "Chord under churn: n=%d, k=%d, zipf %.1f, exp(%g s) lifetimes,\n"
      "%.0f q/s, stabilize %.0f s, recompute %.1f s, measure window %.0f "
      "s\n\n",
      cfg.n_nodes, cfg.k, cfg.alpha, churn.mean_lifetime_s,
      churn.queries_per_s, churn.stabilize_interval_s,
      churn.recompute_interval_s, churn.measure_s);

  std::printf("%-22s %10s %10s %10s\n", "policy", "avg hops", "success",
              "queries");
  std::printf("%s\n", std::string(56, '-').c_str());
  for (SelectorKind kind : {SelectorKind::kNone, SelectorKind::kOblivious,
                            SelectorKind::kOptimal}) {
    auto run = RunChurn<ChordPolicy>(cfg, churn, kind);
    if (!run.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", SelectorKindName(kind),
                   run.status().ToString().c_str());
      return 1;
    }
    std::printf("%-22s %10.3f %9.1f%% %10llu\n", SelectorKindName(kind),
                run->avg_hops, 100 * run->success_rate,
                static_cast<unsigned long long>(run->queries));
  }

  auto cmp = CompareChurn<ChordPolicy>(cfg, churn);
  if (cmp.ok()) {
    std::printf(
        "\nimprovement of optimal over oblivious: %.1f%% "
        "(paper reports up to 25%% at n=1024)\n",
        cmp->improvement_pct);
    std::printf("hop distribution (optimal): %s\n",
                cmp->optimal.hop_histogram.Summary().c_str());
  }
  return 0;
}
