// QoS-aware auxiliary selection (paper Secs. IV-D and V-C): a location
// service where a few destinations — say, emergency-service directories —
// must be reachable within a hard hop bound, while everything else is
// optimized for the average case.
//
//   $ ./qos_routing
//
// Shows: (1) the unconstrained optimum may leave the bounded peers slow;
// (2) the QoS selectors meet every bound at the least possible cost;
// (3) an impossible set of bounds is reported as infeasible, not silently
// violated.

#include <cstdio>

#include "auxsel/chord_qos.h"
#include "common/bits.h"
#include "auxsel/pastry_greedy.h"
#include "auxsel/pastry_qos.h"
#include "auxsel/selection_types.h"
#include "common/random.h"
#include "common/zipf.h"

using namespace peercache;
using namespace peercache::auxsel;

namespace {

/// Worst hop estimate among the bounded peers under N ∪ aux.
int WorstBoundedDistance(const SelectionInput& input,
                         const std::vector<uint64_t>& aux) {
  int worst = 0;
  for (const PeerFreq& p : input.peers) {
    if (p.delay_bound < 0) continue;
    int best = input.bits;
    auto all = input.core_ids;
    all.insert(all.end(), aux.begin(), aux.end());
    for (uint64_t w : all) {
      best = std::min(best,
                      input.bits - CommonPrefixLength(w, p.id, input.bits));
    }
    worst = std::max(worst, best);
  }
  return worst;
}

}  // namespace

int main() {
  Rng rng(2026);
  const int kPeers = 400;
  const int kBound = 3;  // emergency lookups: at most 3 estimated hops

  SelectionInput input;
  input.bits = 32;
  input.k = 9;
  auto ids = rng.SampleDistinct(uint64_t{1} << 32, kPeers + 9);
  input.self_id = ids[0];
  ZipfDistribution zipf(kPeers, 1.2);
  for (int i = 0; i < kPeers; ++i) {
    PeerFreq p;
    p.id = ids[static_cast<size_t>(i + 1)];
    p.frequency = zipf.Pmf(static_cast<size_t>(i) + 1) * 1e6;
    input.peers.push_back(p);
  }
  for (int i = 0; i < 8; ++i) {
    input.core_ids.push_back(ids[static_cast<size_t>(kPeers + 1 + i)]);
  }
  // The three COLDEST peers are the emergency directories: nobody queries
  // them often, but when they are needed, they are needed fast.
  for (int i = 0; i < 3; ++i) {
    input.peers[static_cast<size_t>(kPeers - 1 - i)].delay_bound = kBound;
  }

  auto plain = SelectPastryGreedy(input);
  if (!plain.ok()) return 1;
  std::printf("Pastry, %d peers, k=%d, 3 peers with a %d-hop bound\n\n",
              kPeers, input.k, kBound);
  std::printf("unconstrained optimum: cost %.0f, bounds %s, worst bounded "
              "distance %d\n",
              plain->cost,
              PastryQosSatisfied(input, plain->chosen) ? "met" : "VIOLATED",
              WorstBoundedDistance(input, plain->chosen));

  auto qos = SelectPastryGreedyQos(input);
  if (!qos.ok()) {
    std::printf("QoS selection failed: %s\n", qos.status().ToString().c_str());
    return 1;
  }
  std::printf("QoS-aware optimum:     cost %.0f, bounds %s, worst bounded "
              "distance %d\n",
              qos->cost,
              PastryQosSatisfied(input, qos->chosen) ? "met" : "VIOLATED",
              WorstBoundedDistance(input, qos->chosen));
  std::printf("price of the guarantee: +%.2f%% average cost\n\n",
              100.0 * (qos->cost - plain->cost) / plain->cost);

  // Chord works the same way.
  auto chord_qos = SelectChordDpQos(input);
  if (chord_qos.ok()) {
    std::printf("Chord QoS-aware optimum: cost %.0f, bounds %s\n",
                chord_qos->cost,
                ChordQosSatisfied(input, chord_qos->chosen) ? "met"
                                                            : "VIOLATED");
  }

  // Infeasible bounds are detected, not fudged: demand more bounded peers
  // than the pointer budget can cover.
  SelectionInput impossible = input;
  for (size_t i = 0; i < impossible.peers.size(); ++i) {
    impossible.peers[i].delay_bound = 0;  // every peer must be a neighbor
  }
  auto r = SelectPastryGreedyQos(impossible);
  std::printf("\nall %d peers bounded to 0 hops with k=%d -> %s\n", kPeers,
              impossible.k, r.status().ToString().c_str());
  return r.ok() ? 1 : 0;  // this one is supposed to fail
}
