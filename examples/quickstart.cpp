// Quickstart: build a Chord overlay, observe a skewed query stream, install
// the paper's optimal auxiliary neighbors on one node, and watch its average
// lookup cost drop.
//
//   $ ./quickstart
//
// Walks through the core public API: ChordNetwork (overlay + routing),
// FrequencyTable (access-frequency observation), SelectChordFast (the
// O(n(b+k)log n) optimal selector), and SelectChordOblivious (the baseline).

#include <cstdio>

#include "auxsel/chord_fast.h"
#include "auxsel/oblivious.h"
#include "chord/chord_network.h"
#include "common/random.h"
#include "common/stats.h"
#include "common/zipf.h"

using namespace peercache;

namespace {

/// Measures the average hops for `queries` lookups from `origin`, drawn
/// from the given popularity distribution over destination keys.
double MeasureAvgHops(const chord::ChordNetwork& net, uint64_t origin,
                      const std::vector<uint64_t>& keys) {
  OnlineStats hops;
  for (uint64_t key : keys) {
    auto route = net.Lookup(origin, key);
    if (route.ok() && route->success) hops.Add(route->hops);
  }
  return hops.mean();
}

}  // namespace

int main() {
  // 1. Build a 512-node Chord overlay with 32-bit ids.
  chord::ChordParams params;
  params.bits = 32;
  chord::ChordNetwork net(params);
  Rng rng(42);
  std::vector<uint64_t> ids = rng.SampleDistinct(uint64_t{1} << 32, 512);
  for (uint64_t id : ids) {
    if (auto s = net.AddNode(id); !s.ok()) {
      std::fprintf(stderr, "join failed: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  net.StabilizeAll();
  std::printf("built a Chord ring with %zu nodes\n", net.live_count());

  // 2. One node watches its own query stream: keys are zipf-popular.
  const uint64_t me = ids[0];
  ZipfDistribution zipf(ids.size(), 1.2);
  std::vector<uint64_t> warmup_keys, measure_keys;
  for (int q = 0; q < 4000; ++q) {
    // Popularity rank r maps to the key owned by node ids[r-1].
    warmup_keys.push_back(ids[zipf.Sample(rng) - 1]);
    measure_keys.push_back(ids[zipf.Sample(rng) - 1]);
  }
  auxsel::FrequencyTable& freq = net.GetNode(me)->frequencies;
  for (uint64_t key : warmup_keys) {
    auto route = net.Lookup(me, key);
    if (route.ok() && route->success) freq.Record(route->destination);
  }
  std::printf("observed %llu queries to %zu distinct peers\n",
              static_cast<unsigned long long>(freq.total()),
              freq.distinct());

  const double base = MeasureAvgHops(net, me, measure_keys);
  std::printf("core neighbors only:        %.3f avg hops\n", base);

  // 3. Frequency-oblivious baseline: k random per-slice pointers.
  auxsel::SelectionInput input;
  input.bits = params.bits;
  input.self_id = me;
  input.k = 9;  // log2(512)
  input.core_ids = net.CoreNeighborIds(me);
  for (uint64_t id : ids) {
    if (id != me) input.peers.push_back({id, 0.0, -1});
  }
  auto oblivious = auxsel::SelectChordOblivious(input, rng);
  if (!oblivious.ok()) return 1;
  (void)net.SetAuxiliaries(me, oblivious->chosen);
  const double obl = MeasureAvgHops(net, me, measure_keys);
  std::printf("+ %zu oblivious auxiliaries: %.3f avg hops\n",
              oblivious->chosen.size(), obl);

  // 4. The paper's optimal selection from the observed frequencies.
  input.peers = freq.Snapshot(me);
  auto optimal = auxsel::SelectChordFast(input);
  if (!optimal.ok()) return 1;
  (void)net.SetAuxiliaries(me, optimal->chosen);
  const double opt = MeasureAvgHops(net, me, measure_keys);
  std::printf("+ %zu optimal auxiliaries:   %.3f avg hops\n",
              optimal->chosen.size(), opt);

  std::printf(
      "\nimprovement over oblivious: %.1f%% (paper Sec. VI reports up to "
      "57%% at n=1024)\n",
      100.0 * (obl - opt) / obl);
  std::printf("predicted Eq.1 cost of the optimal set: %.1f\n",
              optimal->cost);
  return 0;
}
