// The paper's motivating application (Sec. I): a P2P name service for
// mobile hosts. DNS servers are stable peers; hostname -> IP bindings are
// items that change frequently as hosts move.
//
// This example contrasts two acceleration strategies under item churn:
//
//   * item caching: a node caches resolved bindings with a TTL. Fast while
//     fresh, but a binding update invalidates every cached copy, so the
//     faster hosts move, the more stale answers are served.
//   * peer caching (this paper): a node caches POINTERS to the servers that
//     own popular bindings. Lookups stay 1-2 hops and always return the
//     authoritative (fresh) binding, no matter how often bindings change.
//
//   $ ./p2p_dns

#include <cstdio>
#include <unordered_map>
#include <vector>

#include "auxsel/chord_fast.h"
#include "chord/chord_network.h"
#include "common/random.h"
#include "common/zipf.h"
#include "workload/workload.h"

using namespace peercache;

namespace {

/// A resolved binding: which "IP address" (version counter) a name had.
struct Binding {
  uint64_t version = 0;
};

/// Per-node item cache with a TTL, the strategy peer caching competes with.
struct ItemCache {
  struct Entry {
    uint64_t version;
    double expires_at;
  };
  std::unordered_map<uint64_t, Entry> entries;
  double ttl;

  explicit ItemCache(double ttl_seconds) : ttl(ttl_seconds) {}
};

}  // namespace

int main() {
  // A 256-server name-service overlay; 1024 hostnames; zipf(1.2) lookups.
  const int kServers = 256;
  const size_t kNames = 1024;
  const double kTtl = 60.0;           // item-cache TTL in seconds
  const double kUpdatePeriod = 120.0; // mean time between moves per host
  const double kDuration = 3600.0;
  const double kQueryRate = 50.0;     // lookups per second, whole system

  chord::ChordParams params;
  params.bits = 32;
  chord::ChordNetwork net(params);
  Rng rng(7);
  std::vector<uint64_t> servers =
      rng.SampleDistinct(uint64_t{1} << 32, kServers);
  for (uint64_t id : servers) (void)net.AddNode(id);
  net.StabilizeAll();

  workload::ItemSpace names(params.bits, kNames, 99);
  ZipfDistribution zipf(kNames, 1.2);

  // Authoritative bindings, bumped when a host moves.
  std::vector<Binding> bindings(kNames);

  // Warm up frequency tables, then install optimal auxiliary pointers.
  for (int q = 0; q < 20000; ++q) {
    uint64_t origin = servers[rng.UniformU64(servers.size())];
    size_t name = zipf.Sample(rng) - 1;
    auto resp = net.ResponsibleNode(names.ItemKey(name));
    if (resp.ok() && resp.value() != origin) {
      net.GetNode(origin)->frequencies.Record(resp.value());
    }
  }
  for (uint64_t id : servers) {
    auxsel::SelectionInput input;
    input.bits = params.bits;
    input.self_id = id;
    input.k = 8;  // log2(256)
    input.core_ids = net.CoreNeighborIds(id);
    input.peers = net.GetNode(id)->frequencies.Snapshot(id);
    auto sel = auxsel::SelectChordFast(input);
    if (sel.ok()) (void)net.SetAuxiliaries(id, sel->chosen);
  }

  // Simulate lookups + host movement over an hour of virtual time.
  std::vector<ItemCache> caches(kServers, ItemCache(kTtl));
  std::unordered_map<uint64_t, size_t> server_index;
  for (size_t i = 0; i < servers.size(); ++i) server_index[servers[i]] = i;

  double now = 0;
  uint64_t item_cache_hits = 0, item_cache_stale = 0;
  uint64_t pointer_lookups = 0, pointer_hops = 0, item_miss_hops = 0,
           item_misses = 0;
  Rng update_rng(13);
  double next_update = update_rng.Exponential(kUpdatePeriod / kNames);

  while (now < kDuration) {
    now += rng.Exponential(1.0 / kQueryRate);
    while (next_update < now) {
      // Some host moved: its authoritative binding changes, every cached
      // copy anywhere is now stale.
      size_t moved = update_rng.UniformU64(kNames);
      ++bindings[moved].version;
      next_update += update_rng.Exponential(kUpdatePeriod / kNames);
    }

    uint64_t origin = servers[rng.UniformU64(servers.size())];
    size_t name = zipf.Sample(rng) - 1;
    uint64_t key = names.ItemKey(name);

    // Strategy A: item caching with TTL.
    ItemCache& cache = caches[server_index[origin]];
    auto it = cache.entries.find(key);
    if (it != cache.entries.end() && it->second.expires_at > now) {
      ++item_cache_hits;
      if (it->second.version != bindings[name].version) ++item_cache_stale;
    } else {
      auto route = net.Lookup(origin, key);
      if (route.ok() && route->success) {
        ++item_misses;
        item_miss_hops += static_cast<uint64_t>(route->hops);
        cache.entries[key] =
            ItemCache::Entry{bindings[name].version, now + kTtl};
      }
    }

    // Strategy B: peer caching (always routes; always authoritative).
    auto route = net.Lookup(origin, key);
    if (route.ok() && route->success) {
      ++pointer_lookups;
      pointer_hops += static_cast<uint64_t>(route->hops);
    }
  }

  const double hit_rate =
      static_cast<double>(item_cache_hits) /
      static_cast<double>(item_cache_hits + item_misses);
  const double stale_rate = item_cache_hits == 0
                                ? 0.0
                                : static_cast<double>(item_cache_stale) /
                                      static_cast<double>(item_cache_hits);
  std::printf("P2P DNS, %d servers, %zu names, one host move every %.2f s systemwide\n\n",
              kServers, kNames, kUpdatePeriod / kNames);
  std::printf("item caching (TTL %.0fs):\n", kTtl);
  std::printf("  cache hit rate     %.1f%%  (0 hops, but...)\n",
              100 * hit_rate);
  std::printf("  STALE answers      %.1f%% of cache hits\n",
              100 * stale_rate);
  std::printf("  miss cost          %.2f avg hops\n",
              item_misses ? static_cast<double>(item_miss_hops) / item_misses
                          : 0.0);
  std::printf("\npeer caching (this paper):\n");
  std::printf("  avg lookup         %.2f hops\n",
              pointer_lookups
                  ? static_cast<double>(pointer_hops) / pointer_lookups
                  : 0.0);
  std::printf("  stale answers      0.0%%  (every answer is authoritative)\n");
  std::printf(
      "\nPointer caching trades the item cache's 0-hop hits for always-fresh"
      "\n1-2 hop lookups — the right trade when items churn faster than "
      "peers.\n");
  return 0;
}
