// Command-line driver for the full experiment harness: run any paper
// configuration (system, size, budget, skew, churn) from the shell.
//
//   $ ./sim_cli --system chord --n 512 --k 9 --alpha 1.2
//   $ ./sim_cli --system chord --churn --n 256
//   $ ./sim_cli --system pastry --n 1024 --k 20 --alpha 0.91
//   $ ./sim_cli --system kademlia --n 512 --fault-drop 0.2
//
// Prints the three-way policy comparison and the paper's improvement
// metric, plus the hop histogram of the optimal run. With --json-out the
// same run also emits a schema-versioned telemetry document, and with
// --trace-out the sampled route traces land in a JSONL file.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>

#include "common/bits.h"
#include "common/latency.h"
#include "common/logging.h"
#include "common/profiler.h"
#include "common/thread_pool.h"
#include "experiments/generic_experiment.h"
#include "experiments/json_report.h"

using namespace peercache;
using namespace peercache::experiments;

namespace {

struct Args {
  std::string system = "chord";
  bool churn = false;
  int n = 512;
  int k = -1;  // default: log2(n)
  double alpha = 1.2;
  int items = -1;  // default: n
  int lists = -1;  // default: 5 for chord, 1 for pastry/kademlia
  uint64_t seed = 1;
  double duration_s = 2400;
  int threads = 0;  // 0 = hardware concurrency, 1 = serial
  std::string json_out;
  std::string trace_out;
  int trace_sample = 0;  // 0 = pick a default when --trace-out is given
  std::string freq_mode = "observed";
  int audit_period = 4;
  int freq_sketch_top = 0;  // 0 = exact tables (sketch mode off)
  int sketch_width = 64;
  int sketch_depth = 4;
  std::string drift_kind = "none";
  int drift_period = 0;
  double drift_fraction = 0.25;
  double drift_boost = 0.3;
  uint64_t drift_seed = 97;
  double budget_gamma = 0.0;
  uint64_t budget_seed = 7;
  peercache::fault::FaultConfig faults;
  peercache::latency::LatencyConfig latency;
  std::string latency_matrix;
  bool profile = false;
  bool report_memory = false;

  static void Usage(const char* argv0) {
    std::fprintf(
        stderr,
        "usage: %s [--system chord|pastry|kademlia] [--churn] [--n N]\n"
        "          [--k K]\n"
        "          [--alpha A] [--items I] [--lists L] [--seed S]\n"
        "          [--duration SECONDS] [--threads T]\n"
        "          [--json-out FILE] [--trace-out FILE] [--trace-sample P]\n"
        "          [--freq-mode pool|observed] [--audit-period N]\n"
        "          [--freq-sketch TOP] [--sketch-width W] [--sketch-depth D]\n"
        "          [--drift none|rank-shuffle|flash-crowd] [--drift-period Q]\n"
        "          [--drift-fraction F] [--drift-boost B] [--drift-seed S]\n"
        "          [--budget-gamma G] [--budget-seed S]\n"
        "          [--fault-drop P] [--fault-fail P] [--fault-stale P]\n"
        "          [--fault-seed S] [--fault-retries N] [--no-fault-retries]\n"
        "          [--latency-base MS] [--latency-scale MS]\n"
        "          [--latency-jitter MS] [--latency-timeout MS]\n"
        "          [--latency-seed S] [--latency-matrix FILE] [--profile]\n"
        "          [--report-memory]\n"
        "          [--log-level debug|info|warning|error]\n"
        "  --threads T       size of the persistent worker pool the\n"
        "                    warmup/selection/measure phases shard node\n"
        "                    ranges across (0 = all hardware threads,\n"
        "                    1 = serial; telemetry is byte-identical for\n"
        "                    every value)\n"
        "  --freq-mode M     churn recompute rounds: 'observed' (default)\n"
        "                    keeps persistent per-node maintainers and\n"
        "                    applies only each round's deltas; 'pool'\n"
        "                    rebuilds every selection from a full frequency\n"
        "                    snapshot (the legacy behaviour the committed\n"
        "                    churn figures were generated with)\n"
        "  --audit-period N  cross-check incremental selections against\n"
        "                    from-scratch builds every Nth round (observed\n"
        "                    mode; default 4, 0 = never)\n"
        "  --freq-sketch TOP bounded-memory frequency tables: TOP heavy-\n"
        "                    hitter slots (space-saving) plus a count-min\n"
        "                    sketch for the tail; 0 = exact tables (default,\n"
        "                    byte-identical to historical output). Adds a\n"
        "                    'freq_sketch' block to the telemetry document\n"
        "  --sketch-width W  count-min counters per row (default 64,\n"
        "                    rounded up to a power of two)\n"
        "  --sketch-depth D  count-min rows (default 4)\n"
        "  --drift KIND      popularity drift over the stable-mode query\n"
        "                    stream: 'rank-shuffle' (gradual churn) or\n"
        "                    'flash-crowd' (spikes); default 'none'\n"
        "  --drift-period Q  queries per node per drift epoch (required to\n"
        "                    enable drift)\n"
        "  --drift-fraction F  rank positions re-shuffled per epoch\n"
        "                    (rank-shuffle; default 0.25)\n"
        "  --drift-boost B   probability mass diverted to the flash item\n"
        "                    (flash-crowd; default 0.3)\n"
        "  --drift-seed S    seed of the drift process (default 97)\n"
        "  --budget-gamma G  redistribute the global auxiliary budget n*k\n"
        "                    across nodes proportional to capacity^G\n"
        "                    (Pareto-distributed capacities; 0 = uniform k\n"
        "                    per node, the default)\n"
        "  --budget-seed S   seed of the per-node capacities (default 7)\n"
        "  --json-out FILE   write a schema-versioned telemetry document\n"
        "  --trace-out FILE  write sampled route traces as JSONL\n"
        "  --trace-sample P  trace every P-th measured query per node\n"
        "                    (default 0 = off, or 100 with --trace-out)\n"
        "  --fault-drop P    per-forwarding-attempt message-drop probability\n"
        "  --fault-fail P    per-(lookup, node) fail-stop probability\n"
        "  --fault-stale P   per-(lookup, dead entry) stale-window\n"
        "                    probability (churn mode only in practice)\n"
        "  --fault-seed S    seed of the deterministic fault process\n"
        "  --fault-retries N failed attempts tolerated per node visit\n"
        "  --no-fault-retries abort on the first failed attempt\n"
        "                    (see docs/RESILIENCE.md)\n"
        "  --latency-base MS    per-hop propagation floor (enables the\n"
        "                       deterministic link-latency model)\n"
        "  --latency-scale MS   ms per unit of synthetic-coordinate distance\n"
        "                       (heterogeneity knob)\n"
        "  --latency-jitter MS  uniform per-attempt jitter upper bound\n"
        "  --latency-timeout MS time charged per failed forwarding attempt\n"
        "  --latency-seed S     seed of the coordinate/jitter hash space\n"
        "  --latency-matrix F   load measured pairwise RTTs (ping-matrix\n"
        "                       text format; unknown pairs fall back to\n"
        "                       synthetic coordinates)\n"
        "  --profile            enable the phase profiler; the report lands\n"
        "                       in the --json-out document's 'profile' block\n"
        "                       (see docs/OBSERVABILITY.md)\n"
        "  --report-memory      include the flat routing-state footprint\n"
        "                       {bytes_per_node, table_bytes, arena_bytes}\n"
        "                       as a 'memory' block in the --json-out\n"
        "                       document (see docs/OBSERVABILITY.md)\n",
        argv0);
    std::exit(2);
  }

  static Args Parse(int argc, char** argv) {
    Args a;
    for (int i = 1; i < argc; ++i) {
      auto next = [&](const char* flag) -> const char* {
        if (i + 1 >= argc) {
          std::fprintf(stderr, "%s needs a value\n", flag);
          Usage(argv[0]);
        }
        return argv[++i];
      };
      if (!std::strcmp(argv[i], "--system")) {
        a.system = next("--system");
      } else if (!std::strcmp(argv[i], "--churn")) {
        a.churn = true;
      } else if (!std::strcmp(argv[i], "--n")) {
        a.n = std::atoi(next("--n"));
      } else if (!std::strcmp(argv[i], "--k")) {
        a.k = std::atoi(next("--k"));
      } else if (!std::strcmp(argv[i], "--alpha")) {
        a.alpha = std::atof(next("--alpha"));
      } else if (!std::strcmp(argv[i], "--items")) {
        a.items = std::atoi(next("--items"));
      } else if (!std::strcmp(argv[i], "--lists")) {
        a.lists = std::atoi(next("--lists"));
      } else if (!std::strcmp(argv[i], "--seed")) {
        a.seed = static_cast<uint64_t>(std::atoll(next("--seed")));
      } else if (!std::strcmp(argv[i], "--duration")) {
        a.duration_s = std::atof(next("--duration"));
      } else if (!std::strcmp(argv[i], "--threads")) {
        a.threads = std::atoi(next("--threads"));
      } else if (!std::strcmp(argv[i], "--json-out")) {
        a.json_out = next("--json-out");
      } else if (!std::strcmp(argv[i], "--trace-out")) {
        a.trace_out = next("--trace-out");
      } else if (!std::strcmp(argv[i], "--trace-sample")) {
        a.trace_sample = std::atoi(next("--trace-sample"));
      } else if (!std::strcmp(argv[i], "--freq-mode")) {
        a.freq_mode = next("--freq-mode");
      } else if (!std::strcmp(argv[i], "--audit-period")) {
        a.audit_period = std::atoi(next("--audit-period"));
      } else if (!std::strcmp(argv[i], "--freq-sketch")) {
        a.freq_sketch_top = std::atoi(next("--freq-sketch"));
      } else if (!std::strcmp(argv[i], "--sketch-width")) {
        a.sketch_width = std::atoi(next("--sketch-width"));
      } else if (!std::strcmp(argv[i], "--sketch-depth")) {
        a.sketch_depth = std::atoi(next("--sketch-depth"));
      } else if (!std::strcmp(argv[i], "--drift")) {
        a.drift_kind = next("--drift");
      } else if (!std::strcmp(argv[i], "--drift-period")) {
        a.drift_period = std::atoi(next("--drift-period"));
      } else if (!std::strcmp(argv[i], "--drift-fraction")) {
        a.drift_fraction = std::atof(next("--drift-fraction"));
      } else if (!std::strcmp(argv[i], "--drift-boost")) {
        a.drift_boost = std::atof(next("--drift-boost"));
      } else if (!std::strcmp(argv[i], "--drift-seed")) {
        a.drift_seed =
            static_cast<uint64_t>(std::atoll(next("--drift-seed")));
      } else if (!std::strcmp(argv[i], "--budget-gamma")) {
        a.budget_gamma = std::atof(next("--budget-gamma"));
      } else if (!std::strcmp(argv[i], "--budget-seed")) {
        a.budget_seed =
            static_cast<uint64_t>(std::atoll(next("--budget-seed")));
      } else if (!std::strcmp(argv[i], "--fault-drop")) {
        a.faults.drop_prob = std::atof(next("--fault-drop"));
      } else if (!std::strcmp(argv[i], "--fault-fail")) {
        a.faults.fail_prob = std::atof(next("--fault-fail"));
      } else if (!std::strcmp(argv[i], "--fault-stale")) {
        a.faults.stale_prob = std::atof(next("--fault-stale"));
      } else if (!std::strcmp(argv[i], "--fault-seed")) {
        a.faults.seed =
            static_cast<uint64_t>(std::atoll(next("--fault-seed")));
      } else if (!std::strcmp(argv[i], "--fault-retries")) {
        a.faults.max_retries = std::atoi(next("--fault-retries"));
      } else if (!std::strcmp(argv[i], "--no-fault-retries")) {
        a.faults.retry = false;
      } else if (!std::strcmp(argv[i], "--latency-base")) {
        a.latency.base_rtt_ms = std::atof(next("--latency-base"));
      } else if (!std::strcmp(argv[i], "--latency-scale")) {
        a.latency.coord_scale_ms = std::atof(next("--latency-scale"));
      } else if (!std::strcmp(argv[i], "--latency-jitter")) {
        a.latency.jitter_ms = std::atof(next("--latency-jitter"));
      } else if (!std::strcmp(argv[i], "--latency-timeout")) {
        a.latency.timeout_ms = std::atof(next("--latency-timeout"));
      } else if (!std::strcmp(argv[i], "--latency-seed")) {
        a.latency.seed =
            static_cast<uint64_t>(std::atoll(next("--latency-seed")));
      } else if (!std::strcmp(argv[i], "--latency-matrix")) {
        a.latency_matrix = next("--latency-matrix");
      } else if (!std::strcmp(argv[i], "--profile")) {
        a.profile = true;
      } else if (!std::strcmp(argv[i], "--report-memory")) {
        a.report_memory = true;
      } else if (!std::strcmp(argv[i], "--log-level")) {
        LogLevel level;
        if (!ParseLogLevel(next("--log-level"), &level)) {
          std::fprintf(stderr, "unknown log level\n");
          Usage(argv[0]);
        }
        SetLogLevel(level);
      } else {
        Usage(argv[0]);
      }
    }
    if (a.system != "chord" && a.system != "pastry" &&
        a.system != "kademlia") {
      Usage(argv[0]);
    }
    if (a.freq_mode != "pool" && a.freq_mode != "observed") Usage(argv[0]);
    if (a.freq_sketch_top < 0 || a.sketch_width < 2 || a.sketch_depth < 1) {
      Usage(argv[0]);
    }
    workload::DriftKind parsed_kind;
    if (!workload::ParseDriftKind(a.drift_kind, &parsed_kind)) Usage(argv[0]);
    if (a.n < 2) Usage(argv[0]);
    if (a.trace_sample == 0 && !a.trace_out.empty()) a.trace_sample = 100;
    return a;
  }
};

}  // namespace

int main(int argc, char** argv) {
  Args args = Args::Parse(argc, argv);

  ExperimentConfig cfg;
  cfg.n_nodes = args.n;
  cfg.k = args.k > 0 ? args.k : CeilLog2(static_cast<uint64_t>(args.n));
  cfg.alpha = args.alpha;
  cfg.n_items =
      args.items > 0 ? static_cast<size_t>(args.items)
                     : static_cast<size_t>(args.n);
  cfg.n_popularity_lists =
      args.lists > 0 ? args.lists : (args.system == "chord" ? 5 : 1);
  cfg.seed = args.seed;
  cfg.threads = args.threads;
  cfg.trace_sample_period = args.trace_sample;
  cfg.freq_mode =
      args.freq_mode == "pool" ? FreqMode::kPool : FreqMode::kObserved;
  cfg.maintenance_audit_period = args.audit_period;
  cfg.faults = args.faults;
  cfg.latency = args.latency;
  cfg.report_memory = args.report_memory;
  if (args.freq_sketch_top > 0) {
    cfg.freq_sketch.top_capacity = static_cast<size_t>(args.freq_sketch_top);
    cfg.freq_sketch.cm_width = static_cast<size_t>(args.sketch_width);
    cfg.freq_sketch.cm_depth = args.sketch_depth;
  }
  (void)workload::ParseDriftKind(args.drift_kind, &cfg.drift.kind);
  cfg.drift.period = args.drift_period;
  cfg.drift.shuffle_fraction = args.drift_fraction;
  cfg.drift.flash_boost = args.drift_boost;
  cfg.drift.seed = args.drift_seed;
  cfg.budget_gamma = args.budget_gamma;
  cfg.budget_seed = args.budget_seed;
  if (!args.latency_matrix.empty()) {
    Result<latency::PingMatrix> m =
        latency::LoadPingMatrixFile(args.latency_matrix);
    if (!m.ok()) {
      std::fprintf(stderr, "latency-matrix failed: %s\n",
                   m.status().ToString().c_str());
      return 1;
    }
    cfg.latency_matrix = std::move(m).value();
  }
  if (args.profile) Profiler::Global().Enable(true);

  std::printf(
      "%s %s: n=%d k=%d alpha=%.2f items=%zu lists=%d seed=%llu threads=%d\n\n",
      args.system.c_str(), args.churn ? "churn" : "stable", cfg.n_nodes, cfg.k,
      cfg.alpha, cfg.n_items, cfg.n_popularity_lists,
      static_cast<unsigned long long>(cfg.seed), ResolveThreads(cfg.threads));

  Result<Comparison> cmp = [&]() -> Result<Comparison> {
    if (args.system == "chord") {
      if (!args.churn) return CompareStable<ChordPolicy>(cfg);
      ChurnConfig churn;
      churn.warmup_s = args.duration_s / 2;
      churn.measure_s = args.duration_s / 2;
      return CompareChurn<ChordPolicy>(cfg, churn);
    }
    if (args.system == "kademlia") {
      if (!args.churn) return CompareStable<KademliaPolicy>(cfg);
      ChurnConfig churn;
      churn.warmup_s = args.duration_s / 2;
      churn.measure_s = args.duration_s / 2;
      return CompareChurn<KademliaPolicy>(cfg, churn);
    }
    if (!args.churn) return CompareStable<PastryPolicy>(cfg);
    ChurnConfig churn;
    churn.warmup_s = args.duration_s / 2;
    churn.measure_s = args.duration_s / 2;
    return CompareChurn<PastryPolicy>(cfg, churn);
  }();

  if (!cmp.ok()) {
    std::fprintf(stderr, "run failed: %s\n", cmp.status().ToString().c_str());
    return 1;
  }

  std::printf("%-22s %10s %10s\n", "policy", "avg hops", "success");
  std::printf("%s\n", std::string(46, '-').c_str());
  std::printf("%-22s %10.3f %9.1f%%\n", "core-only", cmp->none.avg_hops,
              100 * cmp->none.success_rate);
  std::printf("%-22s %10.3f %9.1f%%\n", "oblivious auxiliaries",
              cmp->oblivious.avg_hops, 100 * cmp->oblivious.success_rate);
  std::printf("%-22s %10.3f %9.1f%%\n", "optimal auxiliaries",
              cmp->optimal.avg_hops, 100 * cmp->optimal.success_rate);
  std::printf("\nimprovement vs oblivious (paper's metric): %.1f%%\n",
              cmp->improvement_pct);
  std::printf("improvement vs core-only:                  %.1f%%\n",
              cmp->improvement_vs_none_pct);
  std::printf("optimal hop distribution: %s\n",
              cmp->optimal.hop_histogram.Summary().c_str());
  std::printf("optimal-run phase times: warmup %.3fs selection %.3fs "
              "measure %.3fs\n",
              cmp->optimal.warmup_seconds, cmp->optimal.selection_seconds,
              cmp->optimal.measure_seconds);
  if (cmp->optimal.fault_injection) {
    const auto& r = cmp->optimal.resilience;
    std::printf(
        "resilience (optimal run): delivered %llu/%llu (%.2f%%), "
        "retries %llu (drop %llu, fail-stop %llu, stale %llu), "
        "budget-exhausted %llu, evictions %llu\n",
        static_cast<unsigned long long>(r.delivered),
        static_cast<unsigned long long>(r.lookups), 100.0 * r.SuccessRate(),
        static_cast<unsigned long long>(r.retries),
        static_cast<unsigned long long>(r.dropped_forwards),
        static_cast<unsigned long long>(r.failstop_skips),
        static_cast<unsigned long long>(r.stale_forwards),
        static_cast<unsigned long long>(r.budget_exhausted),
        static_cast<unsigned long long>(r.dead_entry_evictions));
  }
  if (cmp->optimal.latency_enabled) {
    const LogHistogram& h = cmp->optimal.latency_histogram;
    std::printf(
        "latency (optimal run): p50 %.3fms p90 %.3fms p99 %.3fms "
        "p99.9 %.3fms (mean %.3fms over %llu lookups)\n",
        h.Percentile(0.50), h.Percentile(0.90), h.Percentile(0.99),
        h.Percentile(0.999), h.Mean(),
        static_cast<unsigned long long>(h.count()));
  }

  if (!args.json_out.empty()) {
    const std::string doc = ComparisonDocument(
        "sim_cli", args.system, args.churn ? "churn" : "stable", cfg, *cmp);
    Status st = WriteStringToFile(args.json_out, doc + "\n");
    if (!st.ok()) {
      std::fprintf(stderr, "json-out failed: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("telemetry written to %s\n", args.json_out.c_str());
  }

  if (!args.trace_out.empty()) {
    std::string lines;
    const std::pair<const char*, const RunResult*> runs[] = {
        {"none", &cmp->none},
        {"oblivious", &cmp->oblivious},
        {"optimal", &cmp->optimal}};
    size_t n_traces = 0;
    for (const auto& [policy, run] : runs) {
      for (const RouteTrace& trace : run->traces) {
        lines += TraceJsonLine(args.system, policy, trace);
        lines += '\n';
        ++n_traces;
      }
    }
    Status st = WriteStringToFile(args.trace_out, lines);
    if (!st.ok()) {
      std::fprintf(stderr, "trace-out failed: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("%zu route traces written to %s\n", n_traces,
                args.trace_out.c_str());
  }
  return 0;
}
